"""Sec. 6.1 — the TuX² comparison: throughput is not convergence.

Paper numbers: TuX² SGD MF takes ~0.7 s per Netflix pass on 8 machines
(Orion: ~1.4 s on equivalent hardware) — roughly 2x Orion's raw
throughput.  But with its best tuned mini-batch size, TuX² reaches a
nonzero squared loss of ~7x10^10 in ~600 s on 32 machines, while Orion
reaches ~8.3x10^9 in ~68 s on 8 machines: dependence violation makes the
fast engine lose the overall-convergence race by an order of magnitude.

Shape asserted here: the TuX²-style engine posts a *lower* time per
iteration yet Orion reaches TuX²'s final loss in a fraction of its time.
"""

import pytest

import _workloads as wl
from repro.apps import SGDMFApp, build_sgd_mf
from repro.baselines import run_tux2_minibatch

EPOCHS = 8


def _run_both():
    dataset = wl.netflix_bench()
    cluster = wl.mf_cluster()
    orion = build_sgd_mf(dataset, cluster=cluster, hyper=wl.MF_HYPER).run(EPOCHS)
    tux2 = run_tux2_minibatch(
        SGDMFApp(dataset, wl.MF_HYPER), cluster, EPOCHS
    )
    return orion, tux2


@pytest.mark.benchmark(group="sec61")
def test_sec61_tux2(benchmark, report):
    orion, tux2 = benchmark.pedantic(_run_both, rounds=1, iterations=1)
    target = tux2.final_loss
    orion_time_to_target = orion.time_to_reach(target)
    rows = [
        (
            "Orion",
            f"{orion.final_loss:.1f}",
            f"{orion.time_per_iteration():.4f}",
            f"{orion.total_time_s:.3f}",
        ),
        (
            "TuX2-style",
            f"{tux2.final_loss:.1f}",
            f"{tux2.time_per_iteration():.4f}",
            f"{tux2.total_time_s:.3f}",
        ),
    ]
    detail = (
        f"\nOrion reaches TuX2's final loss ({target:.1f}) in "
        f"{orion_time_to_target:.3f}s vs TuX2's {tux2.total_time_s:.3f}s"
        if orion_time_to_target is not None
        else ""
    )
    report(
        "Sec 6.1: Orion vs TuX2-style mini-batch engine (SGD MF)",
        wl.fmt_table(["engine", "final loss", "s/iter", "total s"], rows)
        + detail
        + "\npaper shape: TuX2 has ~2x Orion's raw throughput but loses "
        "the overall-convergence race by an order of magnitude",
    )
    # Higher raw throughput (paper: ~2x)...
    assert tux2.time_per_iteration() < 0.7 * orion.time_per_iteration()
    # ...but far worse quality after the same number of passes...
    assert orion.final_loss < 0.5 * tux2.final_loss
    # ...so Orion wins the overall convergence race: it reaches TuX2's
    # final quality no later than TuX2 does (and keeps improving).
    assert orion_time_to_target is not None
    assert orion_time_to_target <= tux2.total_time_s
