"""Integration tests for the Orion executor (repro.runtime.executor)."""

import numpy as np
import pytest

from repro.analysis.loop_info import analyze_loop_body
from repro.analysis.strategy import Plan, Strategy, choose_plan
from repro.core.buffers import DistArrayBuffer
from repro.core.distarray import DistArray
from repro.errors import ExecutionError
from repro.runtime.cluster import ClusterSpec
from repro.runtime.executor import OrionExecutor, indices_overlap


def _cluster(machines=2, workers=2):
    return ClusterSpec(num_machines=machines, workers_per_machine=workers)


def _ratings(rows=12, cols=10, seed=0):
    rng = np.random.default_rng(seed)
    entries = [
        ((i, j), float(rng.standard_normal()))
        for i in range(rows)
        for j in range(cols)
        if rng.random() < 0.6
    ]
    return DistArray.from_entries(
        entries, name="ratings_e", shape=(rows, cols)
    ).materialize()


class TestIndicesOverlap:
    def test_points(self):
        assert indices_overlap((("pt", 1),), (("pt", 1),))
        assert not indices_overlap((("pt", 1),), (("pt", 2),))

    def test_point_in_range(self):
        assert indices_overlap((("range", 0, 5),), (("pt", 3),))
        assert not indices_overlap((("range", 0, 5),), (("pt", 5),))

    def test_open_range_matches_all(self):
        assert indices_overlap((("range", None, None),), (("pt", 99),))

    def test_ranges(self):
        assert indices_overlap((("range", 0, 5),), (("range", 4, 9),))
        assert not indices_overlap((("range", 0, 5),), (("range", 5, 9),))

    def test_multi_axis_all_must_overlap(self):
        a = (("pt", 1), ("range", None, None))
        b = (("pt", 2), ("pt", 0))
        assert not indices_overlap(a, b)

    def test_arity_mismatch_disjoint(self):
        assert not indices_overlap((("pt", 1),), (("pt", 1), ("pt", 2)))


def _mf_executor(cluster, ordered=False, validate=True, **opts):
    ratings = _ratings()
    W = DistArray.randn(3, 12, name="W_e", seed=1, scale=0.1).materialize()
    H = DistArray.randn(3, 10, name="H_e", seed=2, scale=0.1).materialize()
    step = 0.05

    def body(key, value):
        w = W[:, key[0]]
        h = H[:, key[1]]
        diff = value - w @ h
        W[:, key[0]] = w + step * diff * h
        H[:, key[1]] = h + step * diff * w

    info = analyze_loop_body(body, ratings, ordered=ordered)
    plan = choose_plan(info)
    executor = OrionExecutor(
        body, info, plan, cluster, validate=validate, **opts
    )
    return executor, (ratings, W, H)


class TestTwoDExecution:
    def test_epoch_runs_and_validates(self):
        executor, _arrays = _mf_executor(_cluster())
        result = executor.run_epoch()
        assert result.epoch_time_s > 0
        assert result.num_tasks == executor.num_workers * executor.num_time

    def test_all_entries_processed_once(self):
        executor, (ratings, _W, _H) = _mf_executor(_cluster())
        assert executor.partitions.total_entries == ratings.num_entries

    def test_rotation_traffic_recorded(self):
        executor, _ = _mf_executor(_cluster())
        result = executor.run_epoch()
        kinds = {kind for _s, _e, _b, kind in result.events}
        assert "rotation" in kinds
        assert executor.rotated_block_bytes > 0

    def test_unordered_faster_than_ordered(self):
        slow_net_cluster = ClusterSpec(
            num_machines=2,
            workers_per_machine=2,
        )
        unordered, _ = _mf_executor(slow_net_cluster, ordered=False)
        ordered, _ = _mf_executor(slow_net_cluster, ordered=True)
        t_unordered = unordered.run_epoch().epoch_time_s
        t_ordered = ordered.run_epoch().epoch_time_s
        assert t_ordered > t_unordered

    def test_updates_actually_applied(self):
        executor, (_ratings, W, H) = _mf_executor(_cluster())
        before_w = W.values.copy()
        executor.run_epoch()
        assert not np.array_equal(W.values, before_w)

    def test_worker_clamping_small_space(self):
        # 12 rows but 64 requested workers: clamped to the extent.
        executor, _ = _mf_executor(_cluster(machines=8, workers=8))
        assert executor.num_workers <= 12
        executor.run_epoch()  # still validates

    def test_multiple_epochs_progress_loss(self):
        executor, (ratings, W, H) = _mf_executor(_cluster())

        def loss():
            total = 0.0
            for (i, j), v in ratings.entries():
                total += (v - W.values[:, i] @ H.values[:, j]) ** 2
            return total

        first = loss()
        for _ in range(4):
            executor.run_epoch()
        assert loss() < first


class TestSerializabilityValidation:
    def test_bogus_plan_caught(self):
        # Claim 1D over dim 0 while the body writes a column keyed by dim 1:
        # same-step workers then write overlapping H columns.
        ratings = _ratings()
        H = DistArray.randn(3, 10, name="H_bogus", seed=3).materialize()

        def body(key, value):
            H[:, key[1]] = H[:, key[1]] + value

        info = analyze_loop_body(body, ratings)
        honest = choose_plan(info)
        assert honest.strategy is Strategy.ONE_D
        assert honest.space_dim == 1
        bogus = Plan(
            strategy=Strategy.ONE_D,
            ordered=False,
            space_dim=0,
            placements=honest.placements,
        )
        executor = OrionExecutor(
            body, info, bogus, _cluster(), validate=True
        )
        with pytest.raises(ExecutionError, match="serializability"):
            executor.run_epoch()

    def test_honest_plan_passes(self):
        ratings = _ratings()
        H = DistArray.randn(3, 10, name="H_honest", seed=3).materialize()

        def body(key, value):
            H[:, key[1]] = H[:, key[1]] + value

        info = analyze_loop_body(body, ratings)
        plan = choose_plan(info)
        executor = OrionExecutor(body, info, plan, _cluster(), validate=True)
        executor.run_epoch()


class TestBuffersInExecution:
    def _slr_executor(self, cluster, **opts):
        rng = np.random.default_rng(4)
        entries = [
            ((i,), ([(int(rng.integers(0, 30)), 1.0) for _ in range(3)], 1))
            for i in range(40)
        ]
        samples = DistArray.from_entries(
            entries, name="samples_e", shape=(40,)
        ).materialize()
        weights = DistArray.zeros(30, name="weights_e").materialize()
        buf = DistArrayBuffer(weights, name="buf_e")

        def body(key, sample):
            features, label = sample
            margin = 0.0
            for fid, fval in features:
                margin = margin + weights[fid] * fval
            for fid, fval in features:
                buf[fid] = 0.1 * fval

        info = analyze_loop_body(body, samples)
        plan = choose_plan(info)
        executor = OrionExecutor(body, info, plan, cluster, **opts)
        return executor, weights, buf

    def test_buffers_flushed_after_epoch(self):
        executor, weights, buf = self._slr_executor(_cluster())
        executor.run_epoch()
        assert buf.pending_count() == 0
        assert np.abs(weights.values).sum() > 0

    def test_flush_traffic_recorded(self):
        executor, _w, _b = self._slr_executor(_cluster())
        result = executor.run_epoch()
        kinds = {kind for _s, _e, _b2, kind in result.events}
        assert "flush" in kinds

    def test_prefetch_traffic_recorded(self):
        executor, _w, _b = self._slr_executor(_cluster())
        assert executor.prefetch.prefetch_fn is not None
        result = executor.run_epoch()
        kinds = {kind for _s, _e, _b2, kind in result.events}
        assert "prefetch" in kinds

    def test_no_prefetch_much_slower(self):
        with_prefetch, _w, _b = self._slr_executor(_cluster(), prefetch="auto")
        without, _w2, _b2 = self._slr_executor(_cluster(), prefetch="none")
        t_with = with_prefetch.run_epoch().epoch_time_s
        t_without = without.run_epoch().epoch_time_s
        # Per-read round trips dominate: the paper's 7682 s vs 9.2 s effect.
        assert t_without > 5 * t_with

    def test_cached_prefetch_faster_second_epoch(self):
        executor, _w, _b = self._slr_executor(
            _cluster(), prefetch="auto", cache_prefetch=True
        )
        first = executor.run_epoch().epoch_time_s
        second = executor.run_epoch().epoch_time_s
        assert second < first

    def test_bad_prefetch_mode_rejected(self):
        with pytest.raises(ExecutionError):
            self._slr_executor(_cluster(), prefetch="sometimes")


class TestUnimodularExecution:
    def test_diagonal_dependence_executes(self):
        entries = [((i, j), 1.0) for i in range(6) for j in range(6)]
        space = DistArray.from_entries(
            entries, name="sp_uni", shape=(6, 6)
        ).materialize()
        grid = DistArray.zeros(6, 6, name="grid_uni").materialize()

        def body(key, value):
            left = grid.values[key[0], key[1] - 1] if key[1] > 0 else 0.0
            diag = grid[key[0] - 1, key[1] - 1] if min(key) > 0 else 0.0
            grid[key[0], key[1]] = left + diag + 1.0

        # Direct analysis of this body sees conditionals; use the plain
        # stencil body for the plan and this guarded body for execution.
        def plan_body(key, value):
            left = grid[key[0], key[1] - 1]
            diag = grid[key[0] - 1, key[1] - 1]
            grid[key[0], key[1]] = 0.5 * (left + diag)

        info = analyze_loop_body(plan_body, space, ordered=True)
        plan = choose_plan(info)
        assert plan.strategy is Strategy.TWO_D_UNIMODULAR
        executor = OrionExecutor(plan_body, info, plan, _cluster())
        result = executor.run_epoch()
        assert result.epoch_time_s > 0
        assert result.num_tasks > 0


class TestEmptySpace:
    def test_empty_iteration_space_raises(self):
        space = DistArray.from_entries(
            [((0,), 1.0)], name="sp_one", shape=(4,)
        ).materialize()
        space._entries.clear()
        vec = DistArray.zeros(4, name="vec_e2").materialize()

        def body(key, value):
            vec[key[0]] = value

        info = analyze_loop_body(body, space)
        plan = choose_plan(info)
        with pytest.raises(ExecutionError):
            OrionExecutor(body, info, plan, _cluster())
