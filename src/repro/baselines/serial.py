"""The serial baseline: the gold standard for per-iteration convergence.

A serial execution processes every entry in order with always-fresh
parameters; the paper uses it as the reference both for convergence rate
(Fig. 9b/9c) and for single-worker throughput (Fig. 9a).
"""

from __future__ import annotations

from typing import List, Optional

from repro.apps.base import SerialApp
from repro.obs.observability import Observability
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.history import RunHistory
from repro.runtime.simtime import CostModel

__all__ = ["run_serial"]


def run_serial(
    app: SerialApp,
    epochs: int,
    seed: int = 0,
    cost: Optional[CostModel] = None,
    label: Optional[str] = None,
    shuffle_each_epoch: bool = False,
    tracer: Optional[Tracer] = None,
    trace_process: str = "serial",
    obs: Optional[Observability] = None,
) -> RunHistory:
    """Train ``app`` serially for ``epochs`` data passes.

    Virtual time per pass is simply ``entries × entry_cost`` — no
    communication, no synchronization, no abstraction overhead.  The lone
    worker is always busy, so every record reports utilization 1.0 (and the
    optional ``tracer`` gets one back-to-back block span per pass).
    """
    import numpy as np

    if tracer is None and obs is not None:
        tracer = obs.tracer
    tracer = tracer if tracer is not None else NULL_TRACER
    cost = cost or CostModel()
    state = app.init_state(seed)
    entries = list(app.entries())
    entry_cost = cost.entry_cost_s
    history = RunHistory(label=label or f"Serial {app.name}")
    history.meta["initial_loss"] = app.loss(state)
    rng = np.random.default_rng(seed)
    clock = 0.0
    for epoch in range(epochs):
        if shuffle_each_epoch:
            order: List[int] = rng.permutation(len(entries)).tolist()
        else:
            order = range(len(entries))
        for position in order:
            key, value = entries[position]
            app.apply_entry(state, key, value)
        epoch_time = len(entries) * entry_cost
        tracer.add_span(
            f"epoch {epoch + 1}",
            "block",
            clock,
            clock + epoch_time,
            track="worker0",
            process=trace_process,
            args={"entries": len(entries)},
        )
        clock += epoch_time
        history.append(app.loss(state), epoch_time, utilization=1.0)
    history.meta["state"] = state
    return history
