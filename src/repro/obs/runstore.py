"""Persistent run records and noise-aware regression detection.

Every :meth:`ParallelLoop.run` call can append one structured record to a
JSONL **run store** (``.repro_runs/runs.jsonl`` by default): the loop's
signature, plan summary, backend, kernel tier, per-epoch timings and the
metrics snapshot.  The store is what ``repro perf`` consumes:

* ``repro perf show`` — table of recorded runs;
* ``repro perf compare`` — two runs side by side, per-epoch deltas;
* ``repro perf check`` — the latest run of every (signature, clock)
  group against the median of its predecessors, with a noise margin
  derived from the baseline spread (real-clock runs jitter; virtual-clock
  runs are deterministic and must match exactly).

The **loop signature** hashes what determines a run's performance shape —
the loop body's AST, iteration-space shape, strategy, backend, kernel
tier, cluster size and the scheduling options — and deliberately excludes
the fault plan, so a fault-slowed run lands in the same group as its
clean baselines and regression detection can flag it.

Recording is opt-in (``LoopOptions.run_store``); with it unset nothing
here is even imported, keeping the disabled path bit-identical.
"""

from __future__ import annotations

import ast
import hashlib
import json
import math
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_ROOT",
    "RunRecord",
    "RunStore",
    "Verdict",
    "loop_signature",
    "record_run",
    "compare_records",
    "check_store",
]

SCHEMA_VERSION = 1

#: Default run-store directory (gitignored; see docs/observability.md).
DEFAULT_ROOT = ".repro_runs"


@dataclass
class RunRecord:
    """One persisted :meth:`ParallelLoop.run` call."""

    label: str
    signature: str
    backend: str
    clock: str
    kernel_tier: str
    plan: Dict[str, Any] = field(default_factory=dict)
    cluster: Dict[str, Any] = field(default_factory=dict)
    options: Dict[str, Any] = field(default_factory=dict)
    #: One entry per executed pass: epoch index, seconds, utilization,
    #: bytes, task count, whether a fault aborted it.
    epochs: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: W-code diagnostics of the loop (kernel fallbacks et al.).
    diagnostics: List[str] = field(default_factory=list)
    #: Multiprocess-runner topology, when that backend ran.
    runner: Dict[str, Any] = field(default_factory=dict)
    #: Adaptive-tuner outcome when the run tuned itself (mode, seeded
    #: config, decision records, final resolved config) — empty for
    #: untuned runs, so records written before the tuner existed load
    #: unchanged (``from_json`` filters to known fields either way).
    tuning: Dict[str, Any] = field(default_factory=dict)
    #: Whether any pass in this run was aborted by an injected fault.
    faulted: bool = False
    #: Logical epoch number of the first pass in this run (1 for a fresh
    #: loop).  Virtual-clock epochs are deterministic *given their index*
    #: — epoch 1 pays prefetch synthesis that later epochs have cached —
    #: so regression groups key on it to compare like with like.
    first_epoch: int = 1
    created_at: str = ""
    version: int = SCHEMA_VERSION

    @property
    def total_time_s(self) -> float:
        return math.fsum(e["epoch_time_s"] for e in self.epochs)

    @property
    def epoch_times(self) -> List[float]:
        return [e["epoch_time_s"] for e in self.epochs]

    @property
    def mean_utilization(self) -> float:
        if not self.epochs:
            return 0.0
        return math.fsum(
            e.get("utilization", 0.0) for e in self.epochs
        ) / len(self.epochs)

    def to_json(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "RunRecord":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        return cls(**{k: v for k, v in payload.items() if k in known})


def loop_signature(loop: Any, exclude: Sequence[str] = ()) -> str:
    """Stable hash of what shapes a loop's performance.

    Covers the body AST, iteration-space shape/size, chosen strategy,
    ordering, backend, kernel tier, cluster size and scheduling options.
    Excludes the fault plan on purpose — an artificially slowed run must
    keep its baselines' signature so ``repro perf check`` can flag it.

    ``exclude`` drops named payload keys before hashing; the tuning cache
    uses it to key on the signature *minus* the tunable knobs
    (``pipeline_depth``/``prefetch``/``cache_prefetch``), so a run at any
    depth can seed later runs of the same loop.  With ``exclude`` empty
    the hash is unchanged from earlier schema versions.
    """
    executor = loop.executor
    info, plan = loop.info, loop.plan
    opts = loop.options
    try:
        body_repr = ast.dump(info.tree)
    except Exception:
        body_repr = getattr(loop.body, "__name__", repr(loop.body))
    payload = {
        "body": body_repr,
        "space_shape": list(info.iteration_space.shape or ()),
        "space_len": int(info.iteration_space.num_entries),
        "strategy": plan.strategy.name,
        "ordered": bool(info.ordered),
        "transform": plan.transform is not None,
        "backend": opts.backend,
        "kernel_tier": executor.kernel_tier,
        "machines": executor.cluster.num_machines,
        "workers": executor.cluster.num_workers,
        "pipeline_depth": executor.pipeline_depth,
        "prefetch": executor.prefetch_mode,
        "cache_prefetch": bool(executor.cache_prefetch),
        "balance": bool(executor.balance),
        "concurrency": executor.concurrency,
        "sanitize": bool(opts.sanitize),
    }
    for key in exclude:
        payload.pop(key, None)
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def record_run(
    loop: Any, results: Sequence[Any], label: Optional[str] = None
) -> RunRecord:
    """Build the :class:`RunRecord` for one finished ``run()`` call."""
    executor = loop.executor
    opts = loop.options
    summary = executor.run_summary()
    epochs: List[Dict[str, Any]] = []
    for index, result in enumerate(results, 1):
        epochs.append(
            {
                "epoch": index,
                "epoch_time_s": float(result.epoch_time_s),
                "clock": result.clock,
                "utilization": float(result.utilization),
                "bytes_sent": float(result.bytes_sent),
                "num_tasks": int(result.num_tasks),
                "kernel_path": bool(result.kernel_path),
                "faulted": result.fault is not None,
            }
        )
    runner_meta: Dict[str, Any] = {}
    backend = getattr(loop, "backend", None)
    runner = getattr(backend, "_runner", None)
    if runner is not None:
        runner_meta = runner.runner_meta()
    metrics_snapshot: Dict[str, Any] = {}
    if executor.metrics.enabled:
        metrics_snapshot = executor.metrics.snapshot()
    tuner = getattr(loop, "_tuner", None)
    tuning_meta: Dict[str, Any] = {}
    if tuner is not None:
        tuning_meta = tuner.summary()
    return RunRecord(
        label=label or opts.trace_process,
        signature=loop_signature(loop),
        backend=opts.backend,
        clock=results[0].clock if results else "virtual",
        kernel_tier=executor.kernel_tier,
        plan=summary,
        cluster={
            "machines": executor.cluster.num_machines,
            "workers": executor.cluster.num_workers,
        },
        options={
            "ordered": bool(loop.info.ordered),
            "pipeline_depth": executor.pipeline_depth,
            "prefetch": executor.prefetch_mode,
            "cache_prefetch": bool(executor.cache_prefetch),
            "sanitize": bool(opts.sanitize),
            "tune": getattr(opts, "tune", "off"),
        },
        epochs=epochs,
        metrics=metrics_snapshot,
        diagnostics=[
            f"{d.code}: {d.message}" for d in loop.info.diagnostics
        ],
        runner=runner_meta,
        tuning=tuning_meta,
        faulted=any(r.fault is not None for r in results),
        first_epoch=max(1, getattr(loop, "_epoch", len(results))
                        - len(results) + 1),
        created_at=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    )


class RunStore:
    """Append-only JSONL store of :class:`RunRecord` payloads."""

    def __init__(self, root: Union[str, Path] = DEFAULT_ROOT) -> None:
        self.root = Path(root)

    @property
    def path(self) -> Path:
        return self.root / "runs.jsonl"

    @classmethod
    def resolve(cls, value: Any) -> "RunStore":
        """Coerce a ``LoopOptions.run_store`` value into a store.

        Accepts a :class:`RunStore`, a path-like, or ``True`` (meaning
        the default root).
        """
        if isinstance(value, cls):
            return value
        if value is True:
            return cls()
        return cls(value)

    def append(self, record: RunRecord) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(json.dumps(record.to_json()) + "\n")

    def load(self) -> List[RunRecord]:
        """Every recorded run, in append order (oldest first)."""
        if not self.path.exists():
            return []
        records: List[RunRecord] = []
        with self.path.open() as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(RunRecord.from_json(json.loads(line)))
        return records

    def __len__(self) -> int:
        return len(self.load())


# --------------------------------------------------------------------- #
# Regression detection                                                   #
# --------------------------------------------------------------------- #

@dataclass
class Verdict:
    """Outcome of one regression comparison."""

    label: str
    signature: str
    clock: str
    baseline_time_s: float
    candidate_time_s: float
    #: candidate / baseline (1.0 = identical).
    ratio: float
    #: Flagging threshold on the ratio (1 + margin).
    allowed_ratio: float
    regressed: bool
    #: How many baseline runs backed the comparison.
    num_baselines: int = 1
    notes: List[str] = field(default_factory=list)

    @property
    def improved(self) -> bool:
        return self.ratio < 1.0 / self.allowed_ratio

    def describe(self) -> str:
        if self.regressed:
            status = "REGRESSION"
        elif self.improved:
            status = "improved"
        else:
            status = "ok"
        line = (
            f"[{status:10s}] {self.label} ({self.signature[:8]}, "
            f"{self.clock} clock): {self.candidate_time_s * 1e3:.3f} ms vs "
            f"baseline {self.baseline_time_s * 1e3:.3f} ms "
            f"({self.ratio:.3f}x, allowed {self.allowed_ratio:.3f}x, "
            f"{self.num_baselines} baseline"
            f"{'s' if self.num_baselines != 1 else ''})"
        )
        for note in self.notes:
            line += f"\n    note: {note}"
        return line


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _verdict(
    baselines: Sequence[RunRecord],
    candidate: RunRecord,
    threshold: float,
    noise_factor: float,
) -> Verdict:
    """Noise-aware comparison of one candidate against its baselines.

    The allowed slowdown is ``1 + max(threshold, noise_factor * spread)``
    where ``spread`` is the baselines' relative total-time spread — zero
    for deterministic virtual-clock runs (so any threshold-exceeding
    slowdown is flagged), wider for jittery real-clock runs.
    """
    totals = [record.total_time_s for record in baselines]
    baseline = _median(totals)
    spread = 0.0
    if len(totals) > 1 and baseline > 0:
        spread = (max(totals) - min(totals)) / baseline
    margin = max(threshold, noise_factor * spread)
    allowed = 1.0 + margin
    candidate_total = candidate.total_time_s
    ratio = candidate_total / baseline if baseline > 0 else float("inf")
    notes: List[str] = []
    if candidate.faulted:
        notes.append("candidate ran with fault injection")
    if any(record.faulted for record in baselines):
        notes.append("some baselines ran with fault injection")
    if len(candidate.epochs) != len(baselines[-1].epochs):
        notes.append(
            f"epoch counts differ ({len(baselines[-1].epochs)} baseline "
            f"vs {len(candidate.epochs)} candidate)"
        )
    if candidate.kernel_tier != baselines[-1].kernel_tier:
        notes.append(
            f"kernel tier changed: {baselines[-1].kernel_tier} -> "
            f"{candidate.kernel_tier}"
        )
    return Verdict(
        label=candidate.label,
        signature=candidate.signature,
        clock=candidate.clock,
        baseline_time_s=baseline,
        candidate_time_s=candidate_total,
        ratio=ratio,
        allowed_ratio=allowed,
        regressed=ratio > allowed,
        num_baselines=len(baselines),
        notes=notes,
    )


def compare_records(
    baseline: RunRecord,
    candidate: RunRecord,
    threshold: float = 0.2,
    noise_factor: float = 2.0,
) -> Verdict:
    """Compare exactly two recorded runs (``repro perf compare``)."""
    verdict = _verdict([baseline], candidate, threshold, noise_factor)
    if baseline.signature != candidate.signature:
        verdict.notes.append(
            "signatures differ — the two runs executed different loop "
            "configurations"
        )
    if baseline.clock != candidate.clock:
        verdict.notes.append(
            f"clock domains differ ({baseline.clock} vs {candidate.clock})"
            " — times are not directly comparable"
        )
    if _tuning_group_key(baseline) != _tuning_group_key(candidate):
        verdict.notes.append(
            "tuning configurations differ — one run adapted its knobs "
            "mid-run (see the records' 'tuning' field)"
        )
    return verdict


def _tuning_group_key(record: RunRecord) -> str:
    """Stable grouping component for a record's tuning outcome.

    Empty for untuned runs (including every pre-tuner record), so their
    grouping is unchanged; for tuned runs, a canonical JSON of the mode,
    seeded config and knob trajectory.  Without this, a run that adapted
    ``pipeline_depth`` mid-run would alias with its untuned baseline —
    the final knobs hash identically even though the epochs were executed
    under a changing configuration.
    """
    tuning = record.tuning or {}
    if not tuning:
        return ""
    key = {
        "mode": tuning.get("mode"),
        "seeded": tuning.get("seeded"),
        "final": tuning.get("final"),
        "trajectory": [
            [d.get("epoch"), d.get("knob"), d.get("old"), d.get("new")]
            for d in tuning.get("decisions", ())
        ],
    }
    return json.dumps(key, sort_keys=True)


def check_store(
    records: Sequence[RunRecord],
    threshold: float = 0.2,
    noise_factor: float = 2.0,
) -> List[Verdict]:
    """Latest-vs-baselines verdict per (signature, clock, epoch, tuning)
    group.

    Grouping on ``first_epoch`` keeps cold-cache first epochs from being
    compared against warm later epochs (deterministic virtual-clock runs
    then match their baselines *bit for bit*); grouping on the tuning key
    keeps a run that re-chose knobs mid-run from aliasing with its
    untuned baseline (untuned records — including every pre-tuner record
    — carry the empty key, so their groups are unchanged).  Groups with a
    single record have no baseline and are skipped.
    """
    groups: Dict[Any, List[RunRecord]] = {}
    for record in records:
        groups.setdefault(
            (
                record.signature,
                record.clock,
                record.first_epoch,
                _tuning_group_key(record),
            ),
            [],
        ).append(record)
    verdicts: List[Verdict] = []
    for key in groups:
        group = groups[key]
        if len(group) < 2:
            continue
        verdicts.append(
            _verdict(group[:-1], group[-1], threshold, noise_factor)
        )
    return verdicts
