"""Word-embedding training (GloVe-style) — paper Sec. 3.2's motivating class.

"ML applications on text data often have parameters associated with each
word, such as ... the word embedding vector, which are accessed based on
word ID."  This application trains GloVe-style embeddings over a sparse
co-occurrence matrix: iteration space ``(word, context) -> count``, with

* embedding matrices read/written as columns (``W[:, key[0]]``,
  ``C[:, key[1]]``) — the SGD MF pattern, and
* *bias vectors* read/written as scalars (``bw[key[0]]``, ``bc[key[1]]``)
  — 1-D point subscripts, a pattern none of the other applications
  exercises.

Static analysis derives 2D unordered parallelization with the word-indexed
arrays pinned together on the space dimension and the context-indexed
arrays rotated together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.api import OrionContext
from repro.apps.base import (
    Entry,
    OrionProgram,
    SerialApp,
    resolve_kernel_option,
    resolve_loop_options,
)
from repro.runtime.cluster import ClusterSpec
from repro.runtime.simtime import CostModel

__all__ = [
    "GloVeHyper",
    "CooccurrenceDataset",
    "GloVeApp",
    "build_orion_program",
    "glove_cost_model",
    "cooccurrence_corpus",
    "glove_loss",
]


@dataclass(frozen=True)
class GloVeHyper:
    """GloVe hyperparameters (Pennington et al.'s weighting)."""

    dim: int = 8
    step_size: float = 0.05
    x_max: float = 20.0
    weight_alpha: float = 0.75
    init_scale: float = 0.3


@dataclass
class CooccurrenceDataset:
    """A sparse word-word co-occurrence matrix."""

    entries: List[Entry]
    vocab_size: int
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def shape(self) -> Tuple[int, int]:
        """Iteration-space shape (vocab × vocab)."""
        return (self.vocab_size, self.vocab_size)


def cooccurrence_corpus(
    vocab_size: int = 200,
    num_tokens: int = 20_000,
    window: int = 3,
    zipf_exponent: float = 1.1,
    num_clusters: int = 8,
    seed: int = 0,
) -> CooccurrenceDataset:
    """Synthesize a co-occurrence matrix with topical (cluster) structure.

    A Zipfian token stream is drawn with Markov persistence inside word
    clusters, so words of the same cluster genuinely co-occur — giving the
    embeddings structure to learn.
    """
    rng = np.random.default_rng(seed)
    cluster_of = rng.integers(0, num_clusters, size=vocab_size)
    base = 1.0 / np.power(np.arange(1, vocab_size + 1), zipf_exponent)
    base /= base.sum()
    counts: Dict[Tuple[int, int], float] = {}
    current_cluster = 0
    window_tokens: List[int] = []
    for _ in range(num_tokens):
        if rng.random() < 0.2:
            current_cluster = int(rng.integers(0, num_clusters))
        members = np.flatnonzero(cluster_of == current_cluster)
        if members.size and rng.random() < 0.7:
            weights = base[members] / base[members].sum()
            token = int(rng.choice(members, p=weights))
        else:
            token = int(rng.choice(vocab_size, p=base))
        for other in window_tokens[-window:]:
            if other == token:
                continue
            pair = (min(token, other), max(token, other))
            counts[pair] = counts.get(pair, 0.0) + 1.0
        window_tokens.append(token)
    entries: List[Entry] = [
        ((i, j), value) for (i, j), value in sorted(counts.items())
    ]
    return CooccurrenceDataset(
        entries=entries,
        vocab_size=vocab_size,
        meta={"cluster_of": cluster_of, "seed": seed},
    )


def glove_cost_model(
    hyper: GloVeHyper, base_entry_cost: float = 1e-6
) -> CostModel:
    """Per-pair compute cost, linear in the embedding dimension."""
    return CostModel(entry_cost_s=base_entry_cost * hyper.dim / 8.0)


def _weight(count: float, x_max: float, alpha: float) -> float:
    return min(1.0, (count / x_max) ** alpha)


def glove_loss(
    W: np.ndarray,
    C: np.ndarray,
    bw: np.ndarray,
    bc: np.ndarray,
    entries: List[Entry],
    hyper: GloVeHyper,
) -> float:
    """The GloVe objective over the observed co-occurrence pairs."""
    total = 0.0
    for (i, j), count in entries:
        weight = _weight(count, hyper.x_max, hyper.weight_alpha)
        diff = W[:, i] @ C[:, j] + bw[i] + bc[j] - np.log(count)
        total += weight * diff * diff
    return total


def build_orion_program(
    dataset: CooccurrenceDataset,
    cluster: Optional[ClusterSpec] = None,
    hyper: GloVeHyper = GloVeHyper(),
    seed: int = 0,
    label: Optional[str] = None,
    use_kernel: Any = True,
    **loop_opts,
) -> OrionProgram:
    """Build the GloVe Orion program (2D unordered).

    GloVe ships no hand-written kernel; ``use_kernel=True`` (default)
    therefore synthesizes one from the loop body (``kernel="auto"``) —
    the app picks up the batched fast path for free.  Pass ``False`` /
    ``"off"`` for the scalar interpreter.
    """
    cluster = cluster or ClusterSpec(num_machines=1, workers_per_machine=4)
    ctx = OrionContext(cluster=cluster, seed=seed)
    cooc = ctx.from_entries(dataset.entries, name="cooc", shape=dataset.shape)
    ctx.materialize(cooc)
    V, D = dataset.vocab_size, hyper.dim
    W = ctx.randn(D, V, name="W", scale=hyper.init_scale)
    C = ctx.randn(D, V, name="C", scale=hyper.init_scale)
    bw = ctx.zeros(V, name="bw")
    bc = ctx.zeros(V, name="bc")
    ctx.materialize(W, C, bw, bc)
    step = hyper.step_size
    x_max = hyper.x_max
    alpha = hyper.weight_alpha

    def body(key, count):
        w_vec = W[:, key[0]]
        c_vec = C[:, key[1]]
        weight = min(1.0, (count / x_max) ** alpha)
        diff = w_vec @ c_vec + bw[key[0]] + bc[key[1]] - np.log(count)
        scale = 2.0 * step * weight * diff
        W[:, key[0]] = w_vec - scale * c_vec
        C[:, key[1]] = c_vec - scale * w_vec
        bw[key[0]] = bw[key[0]] - scale
        bc[key[1]] = bc[key[1]] - scale

    kernel_opt = loop_opts.pop("kernel", resolve_kernel_option(use_kernel))
    opts = resolve_loop_options(loop_opts).merged_with(kernel=kernel_opt)
    loop = ctx.parallel_for(cooc, options=opts)(body)

    def loss_fn() -> float:
        return glove_loss(
            W.values, C.values, bw.values, bc.values, dataset.entries, hyper
        )

    return OrionProgram(
        label=label or "Orion GloVe",
        ctx=ctx,
        epoch_fn=lambda: loop.run(),
        loss_fn=loss_fn,
        train_loop=loop,
        arrays={"cooc": cooc, "W": W, "C": C, "bw": bw, "bc": bc},
        meta={"hyper": hyper},
    )


class GloVeApp(SerialApp):
    """Numpy form of GloVe for the baseline engines."""

    def __init__(
        self, dataset: CooccurrenceDataset, hyper: GloVeHyper = GloVeHyper()
    ) -> None:
        self.dataset = dataset
        self.hyper = hyper
        self.name = "glove"
        self.entry_cost_factor = hyper.dim / 8.0

    def init_state(self, seed: int = 0) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        V, D = self.dataset.vocab_size, self.hyper.dim
        return {
            "W": rng.standard_normal((D, V)) * self.hyper.init_scale,
            "C": rng.standard_normal((D, V)) * self.hyper.init_scale,
            "bw": np.zeros(V),
            "bc": np.zeros(V),
        }

    def apply_entry(self, state: Dict[str, np.ndarray], key, value) -> None:
        i, j = key
        hyper = self.hyper
        w_vec = state["W"][:, i].copy()
        c_vec = state["C"][:, j].copy()
        weight = _weight(value, hyper.x_max, hyper.weight_alpha)
        diff = (
            w_vec @ c_vec + state["bw"][i] + state["bc"][j] - np.log(value)
        )
        scale = 2.0 * hyper.step_size * weight * diff
        state["W"][:, i] = w_vec - scale * c_vec
        state["C"][:, j] = c_vec - scale * w_vec
        state["bw"][i] -= scale
        state["bc"][j] -= scale

    def loss(self, state: Dict[str, np.ndarray]) -> float:
        return glove_loss(
            state["W"],
            state["C"],
            state["bw"],
            state["bc"],
            self.dataset.entries,
            self.hyper,
        )

    def entries(self) -> List[Entry]:
        return self.dataset.entries
