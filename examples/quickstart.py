"""Quickstart: parallelize serial SGD matrix factorization with Orion.

This is the paper's Fig. 5 program in this library's Python API.  A serial
loop over rating entries is handed to ``parallel_for``; static dependence
analysis finds the dependence vectors, picks *2D unordered* parallelization,
pins one factor matrix to workers and rotates the other — no manual
scheduling, partitioning or communication code.

Run:  python examples/quickstart.py

Set ``REPRO_TRACE=trace.json`` to additionally record the run on the
virtual timeline and write a Chrome-trace/Perfetto JSON there (open it in
`ui.perfetto.dev`; see docs/observability.md).  ``make trace-smoke`` uses
exactly this path.
"""

import os

from repro import ClusterSpec, OrionContext
from repro.obs import MetricsRegistry, Tracer, straggler_report, write_chrome_trace
from repro.data import netflix_like

# A small synthetic rating matrix (a Netflix stand-in: low rank + noise).
dataset = netflix_like(num_rows=120, num_cols=90, num_ratings=5000, seed=7)

trace_path = os.environ.get("REPRO_TRACE")
tracer = Tracer() if trace_path else None
metrics = MetricsRegistry() if trace_path else None

ctx = OrionContext(
    cluster=ClusterSpec(num_machines=2, workers_per_machine=4), seed=1,
    tracer=tracer, metrics=metrics,
)

# DistArray creation is lazy; materialize() evaluates (and fuses maps).
ratings = ctx.from_entries(dataset.entries, name="ratings", shape=dataset.shape)
ctx.materialize(ratings)

K = 8
W = ctx.randn(K, dataset.num_rows, name="W", scale=0.1)
H = ctx.randn(K, dataset.num_cols, name="H", scale=0.1)
ctx.materialize(W, H)

step_size = 0.05


def sgd_step(key, rating):
    """One serial SGD update — exactly what you would write single-threaded."""
    w_col = W[:, key[0]]
    h_col = H[:, key[1]]
    diff = rating - w_col @ h_col
    W[:, key[0]] = w_col + step_size * 2.0 * diff * h_col
    H[:, key[1]] = h_col + step_size * 2.0 * diff * w_col


# The decorator is the paper's @parallel_for macro: analysis happens here.
loop = ctx.parallel_for(ratings)(sgd_step)

print("chosen parallelization:", loop.plan.describe())
print("dependence vectors:", sorted(v.describe() for v in loop.plan.dvecs))
print(
    "placements:",
    {name: p.kind.value for name, p in loop.plan.placements.items()},
)


def training_loss() -> float:
    total = 0.0
    for (i, j), value in ratings.entries():
        total += (value - W.values[:, i] @ H.values[:, j]) ** 2
    return total


print(f"\ninitial loss: {training_loss():.2f}")
for epoch in range(1, 11):
    result = loop.run()[0]
    print(
        f"epoch {epoch:2d}: loss={training_loss():10.2f}  "
        f"virtual time={result.epoch_time_s * 1e3:7.2f} ms  "
        f"bytes sent={result.bytes_sent:9.0f}"
    )

print(f"\ntotal virtual time: {ctx.now * 1e3:.1f} ms")
print(f"total network traffic: {ctx.traffic.total_bytes / 1e3:.1f} KB")

if tracer is not None:
    write_chrome_trace(tracer, trace_path)
    print(f"\ntrace written to {trace_path} (open in ui.perfetto.dev)")
    print(straggler_report(tracer, metrics))
