"""Static dependence analysis and parallelization (paper Sec. 4).

Submodules:

* :mod:`repro.analysis.subscript` — the restricted subscript grammar.
* :mod:`repro.analysis.ast_utils` — AST parsing helpers.
* :mod:`repro.analysis.loop_info` — loop-body information extraction.
* :mod:`repro.analysis.depvec` — dependence vectors and Alg. 2.
* :mod:`repro.analysis.strategy` — 1D/2D/unimodular strategy selection.
* :mod:`repro.analysis.unimodular` — unimodular transformation search.
* :mod:`repro.analysis.prefetch` — bulk-prefetch function synthesis.
* :mod:`repro.analysis.lint` — structured diagnostics + static lint pass.
"""

from repro.analysis.lint import (
    CODES,
    Diagnostic,
    LintReport,
    SourceLocation,
    run_lint,
)
from repro.analysis.depvec import (
    ANY,
    NEG,
    POS,
    ArrayRef,
    DepVector,
    compute_dependence_vectors,
)
from repro.analysis.loop_info import LoopInfo, analyze_loop_body
from repro.analysis.prefetch import PrefetchFunction, synthesize_prefetch
from repro.analysis.strategy import (
    Placement,
    PlacementKind,
    Plan,
    Strategy,
    choose_plan,
)
from repro.analysis.unimodular import find_transformation

__all__ = [
    "ANY",
    "NEG",
    "POS",
    "CODES",
    "Diagnostic",
    "LintReport",
    "SourceLocation",
    "run_lint",
    "ArrayRef",
    "DepVector",
    "compute_dependence_vectors",
    "LoopInfo",
    "analyze_loop_body",
    "PrefetchFunction",
    "synthesize_prefetch",
    "Placement",
    "PlacementKind",
    "Plan",
    "Strategy",
    "choose_plan",
    "find_transformation",
]
