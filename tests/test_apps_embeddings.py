"""Tests for the GloVe word-embedding application (repro.apps.embeddings)."""

import numpy as np
import pytest

from repro.analysis.strategy import PlacementKind, Strategy
from repro.apps.embeddings import (
    GloVeApp,
    GloVeHyper,
    build_orion_program,
    cooccurrence_corpus,
    glove_cost_model,
    glove_loss,
)
from repro.runtime.cluster import ClusterSpec


@pytest.fixture(scope="module")
def cooc():
    return cooccurrence_corpus(vocab_size=70, num_tokens=3500, seed=71)


@pytest.fixture
def cluster():
    return ClusterSpec(num_machines=2, workers_per_machine=2)


class TestCorpusGenerator:
    def test_symmetric_canonical_pairs(self, cooc):
        for (i, j), _count in cooc.entries:
            assert i <= j

    def test_counts_positive(self, cooc):
        assert all(count > 0 for _k, count in cooc.entries)

    def test_coordinates_in_vocab(self, cooc):
        for (i, j), _count in cooc.entries:
            assert 0 <= i < cooc.vocab_size
            assert 0 <= j < cooc.vocab_size

    def test_cluster_structure_in_cooccurrence(self, cooc):
        # Same-cluster pairs co-occur more often than cross-cluster pairs.
        cluster_of = cooc.meta["cluster_of"]
        same, cross = [], []
        for (i, j), count in cooc.entries:
            (same if cluster_of[i] == cluster_of[j] else cross).append(count)
        assert np.mean(same) > np.mean(cross)

    def test_determinism(self):
        a = cooccurrence_corpus(vocab_size=30, num_tokens=500, seed=5)
        b = cooccurrence_corpus(vocab_size=30, num_tokens=500, seed=5)
        assert a.entries == b.entries


class TestOrionProgram:
    def test_plan_is_two_d_unordered(self, cooc, cluster):
        program = build_orion_program(cooc, cluster=cluster)
        assert program.plan.strategy is Strategy.TWO_D
        assert not program.plan.ordered

    def test_word_and_bias_arrays_placed_together(self, cooc, cluster):
        # W and bw are both pinned by the word dimension; C and bc both by
        # the context dimension — the placement heuristic must group them.
        program = build_orion_program(cooc, cluster=cluster)
        placements = program.plan.placements
        assert placements["W"].kind is placements["bw"].kind
        assert placements["C"].kind is placements["bc"].kind
        assert placements["W"].kind is not placements["C"].kind
        assert {placements["W"].kind, placements["C"].kind} == {
            PlacementKind.LOCAL,
            PlacementKind.ROTATED,
        }

    def test_loss_decreases_sharply(self, cooc, cluster):
        program = build_orion_program(
            cooc, cluster=cluster, hyper=GloVeHyper(dim=6)
        )
        history = program.run(5)
        assert history.final_loss < 0.3 * history.meta["initial_loss"]

    def test_validation_clean(self, cooc, cluster):
        program = build_orion_program(cooc, cluster=cluster, validate=True)
        program.run(2)

    def test_embeddings_reflect_clusters(self, cooc, cluster):
        # After training, same-cluster words should be more similar than
        # cross-cluster words on average.
        program = build_orion_program(
            cooc, cluster=cluster, hyper=GloVeHyper(dim=6, step_size=0.05)
        )
        program.run(8)
        vectors = program.arrays["W"].values + program.arrays["C"].values
        vectors = vectors / np.maximum(
            np.linalg.norm(vectors, axis=0, keepdims=True), 1e-9
        )
        cluster_of = cooc.meta["cluster_of"]
        same, cross = [], []
        for (i, j), _count in cooc.entries[:400]:
            sim = float(vectors[:, i] @ vectors[:, j])
            (same if cluster_of[i] == cluster_of[j] else cross).append(sim)
        assert np.mean(same) > np.mean(cross)


class TestSerialApp:
    def test_serial_matches_loss_function(self, cooc):
        app = GloVeApp(cooc, GloVeHyper(dim=6))
        state = app.init_state(0)
        direct = glove_loss(
            state["W"], state["C"], state["bw"], state["bc"],
            cooc.entries, app.hyper,
        )
        assert app.loss(state) == pytest.approx(direct)

    def test_serial_training_converges(self, cooc):
        app = GloVeApp(cooc, GloVeHyper(dim=6))
        state = app.init_state(0)
        before = app.loss(state)
        for _ in range(3):
            for key, value in app.entries():
                app.apply_entry(state, key, value)
        assert app.loss(state) < 0.5 * before

    def test_bias_terms_move(self, cooc):
        app = GloVeApp(cooc)
        state = app.init_state(0)
        key, value = app.entries()[0]
        app.apply_entry(state, key, value)
        assert state["bw"][key[0]] != 0.0
        assert state["bc"][key[1]] != 0.0


class TestCostModel:
    def test_scales_with_dimension(self):
        small = glove_cost_model(GloVeHyper(dim=8))
        big = glove_cost_model(GloVeHyper(dim=32))
        assert big.entry_cost_s == pytest.approx(4 * small.entry_cost_s)
