"""Deterministic virtual-time cost model.

Every engine in this reproduction executes the *real* numerical update
(so loss measurements are genuine) while charging virtual seconds from an
explicit cost model.  This separates convergence behaviour — which the
simulation measures — from raw hardware speed, which it models, so the
paper's throughput *shapes* (speedups, crossovers, ordered-vs-unordered
ratios) are reproducible on any machine.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Per-operation virtual costs.

    Attributes:
        entry_cost_s: seconds of useful compute per loop iteration (per
            processed data entry) for the application's update function.
        overhead_factor: multiplicative abstraction overhead on top of the
            raw update (Orion's Julia runtime, Bösen's client library, a
            C++ system would use < 1 relative to the Julia baseline).
        sync_overhead_s: fixed cost per synchronization barrier.
        per_message_cpu_s: CPU time charged per network message, modelling
            per-message overheads and lock contention (paper Sec. 6.4:
            excessive communication reduces Bösen's computation throughput).
        marshalling_s_per_byte: CPU time to serialize/deserialize each byte
            a worker rotates to its neighbour.  Zero for systems exchanging
            data by pointer swapping (STRADS's C++ runtime) or for
            trivially-serializable float arrays; significant for Julia
            inter-process transfer of structured data like LDA's per-row
            counts (paper Sec. 6.4).
    """

    entry_cost_s: float = 1e-6
    overhead_factor: float = 1.0
    sync_overhead_s: float = 5e-4
    per_message_cpu_s: float = 0.0
    marshalling_s_per_byte: float = 0.0

    def compute_time(self, num_entries: int) -> float:
        """Virtual seconds to execute ``num_entries`` loop iterations."""
        return num_entries * self.entry_cost_s * self.overhead_factor

    def with_overhead(self, factor: float) -> "CostModel":
        """A copy with a different abstraction-overhead factor."""
        return replace(self, overhead_factor=factor)

    def scaled(self, entry_cost_s: float) -> "CostModel":
        """A copy with a different per-entry compute cost."""
        return replace(self, entry_cost_s=entry_cost_s)
