"""Tests for the LDA application (repro.apps.lda)."""

import numpy as np
import pytest

from repro.analysis.strategy import PlacementKind, Strategy
from repro.apps.lda import LDAApp, LDAHyper, build_orion_program


def _count_invariants(doc_topic, word_topic, topic_sum, total_tokens):
    assert doc_topic.sum() == pytest.approx(total_tokens)
    assert word_topic.sum() == pytest.approx(total_tokens)
    assert topic_sum.sum() == pytest.approx(total_tokens)
    assert (doc_topic >= 0).all()
    assert (word_topic >= 0).all()
    assert (topic_sum >= 0).all()


class TestOrionProgram:
    def test_plan_is_two_d_unordered(self, corpus_small, cluster_tiny):
        program = build_orion_program(
            corpus_small, cluster=cluster_tiny, hyper=LDAHyper(num_topics=4)
        )
        assert program.plan.strategy is Strategy.TWO_D
        assert not program.plan.ordered

    def test_topic_sum_on_server(self, corpus_small, cluster_tiny):
        program = build_orion_program(
            corpus_small, cluster=cluster_tiny, hyper=LDAHyper(num_topics=4)
        )
        assert program.plan.placements["topic_sum"].kind is PlacementKind.SERVER
        assert program.plan.uses_buffers

    def test_counts_stay_consistent_after_epochs(self, corpus_small, cluster_tiny):
        program = build_orion_program(
            corpus_small, cluster=cluster_tiny, hyper=LDAHyper(num_topics=4)
        )
        program.run(3)
        _count_invariants(
            program.arrays["doc_topic"].values,
            program.arrays["word_topic"].values,
            program.arrays["topic_sum"].values,
            corpus_small.total_tokens,
        )

    def test_likelihood_improves(self, corpus_small, cluster_tiny):
        program = build_orion_program(
            corpus_small, cluster=cluster_tiny, hyper=LDAHyper(num_topics=4)
        )
        history = program.run(5)
        assert history.final_loss < history.meta["initial_loss"]

    def test_validation_clean(self, corpus_small, cluster_tiny):
        program = build_orion_program(
            corpus_small,
            cluster=cluster_tiny,
            hyper=LDAHyper(num_topics=4),
            validate=True,
        )
        program.run(2)


class TestSerialApp:
    def test_apply_entry_preserves_counts(self, corpus_small):
        app = LDAApp(corpus_small, LDAHyper(num_topics=4))
        state = app.init_state(0)
        for key, value in app.entries()[:20]:
            app.apply_entry(state, key, value)
        _count_invariants(
            state["doc_topic"],
            state["word_topic"],
            state["topic_sum"],
            corpus_small.total_tokens,
        )

    def test_serial_pass_improves_likelihood(self, corpus_small):
        app = LDAApp(corpus_small, LDAHyper(num_topics=4))
        state = app.init_state(0)
        before = app.loss(state)
        for _ in range(3):
            for key, value in app.entries():
                app.apply_entry(state, key, value)
        assert app.loss(state) < before

    def test_init_state_resets_assignments(self, corpus_small):
        app = LDAApp(corpus_small, LDAHyper(num_topics=4))
        state = app.init_state(0)
        for key, value in app.entries():
            app.apply_entry(state, key, value)
        fresh = app.init_state(0)
        _count_invariants(
            fresh["doc_topic"],
            fresh["word_topic"],
            fresh["topic_sum"],
            corpus_small.total_tokens,
        )

    def test_entry_cost_scales_with_topics(self, corpus_small):
        few = LDAApp(corpus_small, LDAHyper(num_topics=4))
        many = LDAApp(corpus_small, LDAHyper(num_topics=16))
        assert many.entry_cost_factor > few.entry_cost_factor


class TestOneDVariant:
    """Table 2 lists LDA as "2D Unordered, 1D": the 1D program partitions
    over documents and buffers the word-topic updates too."""

    def test_plan_is_one_d_over_docs(self, corpus_small, cluster_tiny):
        program = build_orion_program(
            corpus_small,
            cluster=cluster_tiny,
            hyper=LDAHyper(num_topics=4),
            parallelism="1d",
        )
        assert program.plan.strategy is Strategy.ONE_D
        assert program.plan.space_dim == 0

    def test_word_topic_buffered_to_server(self, corpus_small, cluster_tiny):
        program = build_orion_program(
            corpus_small,
            cluster=cluster_tiny,
            hyper=LDAHyper(num_topics=4),
            parallelism="1d",
        )
        assert program.plan.placements["word_topic"].kind is PlacementKind.SERVER
        assert program.plan.placements["doc_topic"].kind is PlacementKind.LOCAL

    def test_converges(self, corpus_small, cluster_tiny):
        program = build_orion_program(
            corpus_small,
            cluster=cluster_tiny,
            hyper=LDAHyper(num_topics=4),
            parallelism="1d",
        )
        history = program.run(4)
        assert history.final_loss < history.meta["initial_loss"]

    def test_counts_stay_consistent(self, corpus_small, cluster_tiny):
        program = build_orion_program(
            corpus_small,
            cluster=cluster_tiny,
            hyper=LDAHyper(num_topics=4),
            parallelism="1d",
        )
        program.run(2)
        _count_invariants(
            program.arrays["doc_topic"].values,
            program.arrays["word_topic"].values,
            program.arrays["topic_sum"].values,
            corpus_small.total_tokens,
        )

    def test_unknown_parallelism_rejected(self, corpus_small, cluster_tiny):
        with pytest.raises(ValueError):
            build_orion_program(
                corpus_small, cluster=cluster_tiny, parallelism="3d"
            )
