"""The Orion distributed executor.

Takes a parallelization :class:`~repro.analysis.strategy.Plan` plus the
analyzed loop and runs epochs over the simulated cluster:

* partitions the iteration space (histogram-balanced) along the plan's
  space/time dimensions, or by transformed coordinates for unimodular
  plans;
* executes the *real* loop body for every iteration, in an order that is a
  linearization of the schedule — so results are serializable by
  construction, and a validation mode double-checks that blocks the
  schedule claims concurrent touch disjoint elements;
* charges virtual time per block (compute + prefetch + buffer flush) and
  feeds the schedule's timing model (pipelined rotation, wavefront, or 1D
  barrier) to obtain the epoch makespan;
* records traffic events (rotation, flush, prefetch, broadcast) on the
  virtual timeline for bandwidth accounting.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.analysis.loop_info import LoopInfo
from repro.analysis.prefetch import synthesize_prefetch
from repro.analysis.strategy import PlacementKind, Plan, Strategy
from repro.core import access
from repro.core.distarray import DistArray
from repro.errors import ExecutionError
from repro.obs.observability import Observability
from repro.runtime import partition as parts
from repro.runtime import schedule as sched
from repro.runtime.cluster import ClusterSpec
from repro.runtime.kernels import KernelContext, normalize_index
from repro.runtime.options import UNSET, LoopOptions
from repro.runtime.pserver import PrefetchManager, index_nbytes

__all__ = [
    "EpochResult",
    "OrionExecutor",
    "indices_overlap",
    "kernel_batching_legal",
]


# --------------------------------------------------------------------- #
# Index normalization and overlap (for the serializability validator)    #
# --------------------------------------------------------------------- #

#: Canonical implementation lives in :mod:`repro.runtime.kernels` so the
#: kernel fast path can record the same normal form without an import cycle.
_normalize_index = normalize_index


def _axis_overlap(a: Any, b: Any) -> bool:
    if a[0] == "pt" and b[0] == "pt":
        return a[1] == b[1]
    if a[0] == "pt":
        a, b = b, a
    if b[0] == "pt":
        lo = a[1] if a[1] is not None else -np.inf
        hi = a[2] if a[2] is not None else np.inf
        return lo <= b[1] < hi
    a_lo = a[1] if a[1] is not None else -np.inf
    a_hi = a[2] if a[2] is not None else np.inf
    b_lo = b[1] if b[1] is not None else -np.inf
    b_hi = b[2] if b[2] is not None else np.inf
    return a_lo < b_hi and b_lo < a_hi


def indices_overlap(a: Tuple[Any, ...], b: Tuple[Any, ...]) -> bool:
    """Whether two normalized indices can address a common element."""
    if len(a) != len(b):
        return False
    return all(_axis_overlap(x, y) for x, y in zip(a, b))


# --------------------------------------------------------------------- #
# Access broker: accounting + optional validation                        #
# --------------------------------------------------------------------- #

@dataclass
class _TaskStats:
    entries: int = 0
    server_reads: int = 0
    server_read_bytes: float = 0.0
    flush_bytes: float = 0.0
    accesses: List[Tuple[str, Tuple[Any, ...], bool]] = field(default_factory=list)


class _AccountingBroker(access.AccessBroker):
    """Counts server-array traffic and, in validation mode, records every
    touched index for the post-epoch serializability check.

    One instance is created per task, so concurrently executing tasks
    (threaded backend) never share mutable accounting state.
    """

    def __init__(self, server_ids: Set[int], validate: bool) -> None:
        self.server_ids = server_ids
        self.validate = validate
        self.stats = _TaskStats()

    def read(self, array: DistArray, index: Any) -> Any:
        if id(array) in self.server_ids:
            self.stats.server_reads += 1
            self.stats.server_read_bytes += index_nbytes(array, index)
        if self.validate:
            self.stats.accesses.append(
                (array.name, _normalize_index(index), False)
            )
        return array.direct_get(index)

    def write(self, array: DistArray, index: Any, value: Any) -> None:
        if self.validate:
            self.stats.accesses.append(
                (array.name, _normalize_index(index), True)
            )
        array.direct_set(index, value)

    def buffer_write(self, buffer: Any, index: Any, value: Any) -> None:
        buffer.direct_buffer_write(index, value)

    # ---- bulk hooks (batched-kernel fast path) ------------------------ #

    def bulk_read(self, array: DistArray, indices: Any) -> Any:
        if id(array) in self.server_ids:
            self.stats.server_reads += len(indices)
            self.stats.server_read_bytes += sum(
                index_nbytes(array, index) for index in indices
            )
        if self.validate:
            name = array.name
            self.stats.accesses.extend(
                (name, _normalize_index(index), False) for index in indices
            )
        return array.bulk_get(indices)

    def bulk_write(self, array: DistArray, indices: Any, values: Any) -> None:
        if self.validate:
            name = array.name
            self.stats.accesses.extend(
                (name, _normalize_index(index), True) for index in indices
            )
        array.bulk_set(indices, values)

    def bulk_buffer_write(self, buffer: Any, indices: Any, values: Any) -> None:
        buffer.direct_buffer_write_many(indices, values)


class _SanitizingBroker(_AccountingBroker):
    """Accounting broker that additionally logs each element access with
    the iteration key that performed it, feeding the sanitizer's
    epoch-boundary cross-check (:mod:`repro.sanitizer`).

    ``_run_scalar`` sets :attr:`iteration` before every body call; sanitize
    mode forces scalar execution, so the bulk hooks never fire on this
    broker."""

    def __init__(self, server_ids: Set[int], validate: bool) -> None:
        super().__init__(server_ids, validate)
        self.records: List[Tuple[Any, str, Tuple[Any, ...], str]] = []
        self.iteration: Any = None

    def read(self, array: DistArray, index: Any) -> Any:
        self.records.append(
            (self.iteration, array.name, _normalize_index(index), "r")
        )
        return super().read(array, index)

    def write(self, array: DistArray, index: Any, value: Any) -> None:
        self.records.append(
            (self.iteration, array.name, _normalize_index(index), "w")
        )
        super().write(array, index, value)

    def buffer_write(self, buffer: Any, index: Any, value: Any) -> None:
        self.records.append(
            (self.iteration, buffer.target.name, _normalize_index(index), "b")
        )
        super().buffer_write(buffer, index, value)


# --------------------------------------------------------------------- #
# Executor                                                               #
# --------------------------------------------------------------------- #

@dataclass
class EpochResult:
    """Outcome of one executed data pass."""

    epoch_time_s: float
    bytes_sent: float
    #: Traffic events with epoch-relative (t_start, t_end, nbytes, kind).
    events: List[Tuple[float, float, float, str]] = field(default_factory=list)
    #: Number of blocks executed.
    num_tasks: int = 0
    #: Fraction of worker-seconds spent doing block work (1.0 = no worker
    #: ever waits on rotation, barriers or the parameter server).
    utilization: float = 0.0
    #: Whether blocks ran through the batched-kernel fast path.
    kernel_path: bool = False
    #: Epoch-relative barrier intervals the schedule charged — the points
    #: at which a crashed worker becomes detectable.
    barriers: List[Tuple[float, float]] = field(default_factory=list)
    #: Injected-crash record when this pass was aborted (``None`` for a
    #: clean pass): kind/victim/at_s/detected_s/epoch.  An aborted pass's
    #: ``epoch_time_s`` covers start → detection (+ detection timeout);
    #: the driver loop restores a checkpoint and replays.
    fault: Optional[Dict[str, Any]] = None
    #: Which timeline ``epoch_time_s`` lives on: ``"virtual"`` for the
    #: simulated cost model, ``"real"`` for measured wall-clock seconds
    #: (the multiprocess backend).  Real results accumulate on
    #: ``OrionContext.real_now``, never on the virtual clock.
    clock: str = "virtual"


def kernel_batching_legal(info: Any, plan: Any) -> Tuple[bool, str]:
    """Whether a plan permits batched (whole-block) kernel execution.

    A kernel replaces the per-entry body loop with one call per block, so
    it is legal exactly when the schedule already treats the block as one
    sequential unit whose relaxed dependences all flow through buffers:

    * 2D plans (ordered or unordered): each block owns disjoint rotated
      partitions, so intra-block entries are free to batch.
    * 1D / data-parallel plans: legal only when the body's shared writes
      go through DistArray Buffers (otherwise direct writes may carry
      loop-ordered dependences the analysis preserved by other means).
    * Unimodular-transformed plans: blocks follow skewed wavefronts; the
      scalar path keeps the transformed order, so no batching.
    * ``max_delay`` buffers flush mid-block on the scalar path; a batched
      kernel cannot reproduce that timing, so fall back.

    Returns ``(legal, reason)``; ``reason`` explains a ``False`` verdict.
    """
    if any(
        buffer.max_delay is not None for buffer in info.buffers.values()
    ):
        return False, "max_delay buffers flush mid-block on the scalar path"
    if plan.strategy is Strategy.TWO_D:
        return True, ""
    if plan.strategy in (Strategy.ONE_D, Strategy.DATA_PARALLEL):
        if info.buffers:
            return True, ""
        return False, (
            "1D/data-parallel plans only batch bodies whose shared writes "
            "go through buffers"
        )
    return False, f"{plan.strategy.name} blocks are not batchable"


#: The heuristic pipeline depth ``pipeline_depth="auto"`` resolves to —
#: the paper's Fig. 8 configuration (clamped per-plan during setup).
AUTO_PIPELINE_DEPTH = 2


def _resolve_pipeline_depth(value: Any) -> int:
    """Resolve ``LoopOptions.pipeline_depth`` to a concrete int."""
    if value == "auto":
        return AUTO_PIPELINE_DEPTH
    if isinstance(value, str):
        raise ExecutionError(
            f"pipeline_depth must be an int or 'auto'; got {value!r}"
        )
    return max(1, int(value))


class OrionExecutor:
    """Runs one compiled parallel for-loop on the simulated cluster.

    Args:
        body: the loop-body function.
        info: static analysis of the body.
        plan: the chosen parallelization.
        cluster: simulated cluster spec.
        options: a :class:`~repro.runtime.options.LoopOptions` carrying
            every knob below plus the fault-injection configuration
            (``faults`` / ``checkpoint``).  The individual keyword
            arguments remain accepted; explicitly passed ones override
            the corresponding ``options`` field.
        obs: bundled observability (tracer + metrics); the legacy
            ``tracer=`` / ``metrics=`` kwargs override it component-wise.
        pipeline_depth: time partitions per worker for unordered 2D
            (paper Fig. 8 uses 2).
        balance: histogram-balanced partition bounds (vs. equal width).
        validate: record accesses and verify that same-step blocks touch
            disjoint elements (serializability check; slow, for tests).
        prefetch: ``"auto"`` synthesizes and uses a bulk-prefetch function
            for server arrays, ``"none"`` models per-access round trips.
        cache_prefetch: cache each block's prefetch indices across epochs
            (on by default — the paper's 9.2 s → 6.3 s step; pass ``False``
            to model re-running the synthesized function every pass).
        concurrency: ``"serial"`` executes scheduled-concurrent blocks one
            after another (a linearization — the default, fully
            deterministic); ``"threads"`` runs each step's blocks on a
            thread pool, demonstrating that the schedule's concurrency
            claims hold under genuine parallel execution (dependence-
            preserving plans touch disjoint elements, so results match the
            serial linearization).
        kernel: optional batched kernel ``kernel(block_entries, kctx)``
            applying one block's updates with bulk NumPy operations (see
            :mod:`repro.runtime.kernels`).  Used only when the plan proves
            block-batched execution legal; the scalar body runs otherwise.
        equivalence_check: execute the first kernel-eligible block through
            *both* paths and raise :class:`ExecutionError` unless they
            produce identical array/buffer state and accounting.  The block
            is executed twice, so the check requires a replayable program:
            no RNG draws in the body and no buffer apply UDF that mutates
            state outside the DistArrays (the rewind between runs only
            restores array and buffer contents).
        tracer: observability tracer; spans are emitted on the virtual
            timeline only when it is enabled (default: the shared disabled
            :data:`~repro.obs.tracer.NULL_TRACER`, zero overhead).
        metrics: observability metrics registry (default: the shared
            disabled :data:`~repro.obs.metrics.NULL_METRICS`).
        trace_process: Perfetto process label for this executor's spans,
            letting several engines share one trace file side by side.
    """

    def __init__(
        self,
        body: Callable[..., Any],
        info: LoopInfo,
        plan: Plan,
        cluster: ClusterSpec,
        options: Optional[LoopOptions] = None,
        obs: Optional[Observability] = None,
        pipeline_depth: Any = UNSET,
        balance: Any = UNSET,
        validate: Any = UNSET,
        prefetch: Any = UNSET,
        cache_prefetch: Any = UNSET,
        concurrency: Any = UNSET,
        kernel: Any = UNSET,
        equivalence_check: Any = UNSET,
        tracer: Any = UNSET,
        metrics: Any = UNSET,
        trace_process: Any = UNSET,
    ) -> None:
        opts = options if options is not None else LoopOptions()
        opts = opts.merged_with(
            pipeline_depth=pipeline_depth,
            balance=balance,
            validate=validate,
            prefetch=prefetch,
            cache_prefetch=cache_prefetch,
            concurrency=concurrency,
            kernel=kernel,
            equivalence_check=equivalence_check,
            tracer=tracer,
            metrics=metrics,
            trace_process=trace_process,
        )
        if obs is not None:
            opts = opts.merged_with(obs=obs)
        if opts.prefetch not in ("auto", "none"):
            raise ExecutionError(f"unknown prefetch mode {opts.prefetch!r}")
        if opts.concurrency not in ("serial", "threads"):
            raise ExecutionError(
                f"unknown concurrency mode {opts.concurrency!r}"
            )
        if opts.backend not in ("simulated", "threaded", "multiprocess"):
            raise ExecutionError(f"unknown backend {opts.backend!r}")
        if opts.tune not in ("off", "auto", "cached"):
            raise ExecutionError(
                f"unknown tune mode {opts.tune!r} "
                "(expected 'off', 'auto' or 'cached')"
            )
        self.options = opts
        self.concurrency = opts.concurrency
        self.body = body
        self.info = info
        self.plan = plan
        self.cluster = cluster
        #: What the caller asked for (``"auto"`` or an int) — kept apart
        #: from the resolved :attr:`pipeline_depth` so ``run_summary()``
        #: can report both sides without sentinel ambiguity.
        self.requested_pipeline_depth = opts.pipeline_depth
        self.pipeline_depth = _resolve_pipeline_depth(opts.pipeline_depth)
        self.balance = opts.balance
        self.validate = opts.validate
        self.prefetch_mode = opts.prefetch
        self.cache_prefetch = opts.cache_prefetch
        #: Synthesis outcome when ``kernel="auto"`` resolved the kernel
        #: (``None`` for hand kernels / kernel-less loops).
        self.synth = None
        self.kernel = self._resolve_kernel(opts.kernel)
        self.equivalence_check = opts.equivalence_check
        self.sanitize = opts.sanitize
        #: Shadow-access records accumulated during a sanitized epoch
        #: (extended by tasks on this process and, for the multiprocess
        #: backend, from worker payloads), drained by `_sanitize_check`.
        self._sanitize_records: List[Tuple[Any, str, Tuple[Any, ...], str]] = []
        self._sanitize_values: Optional[Dict[Any, Any]] = None
        resolved = opts.resolve_obs()
        self.obs = resolved
        self.tracer = resolved.tracer
        self.metrics = resolved.metrics
        self.trace_process = opts.trace_process
        self.faults = opts.faults
        #: Unreliable link wrapping the network when the plan drops
        #: messages; ``None`` keeps every transfer on the loss-free path.
        #: (Imported lazily: repro.faults imports repro.runtime.network,
        #: so a module-level import here would be circular.)
        self._link = None
        if self.faults is not None and self.faults.drops is not None:
            from repro.faults.link import FaultyLink

            self._link = FaultyLink(
                self.faults, cluster.network, metrics=self.metrics
            )
        self._equivalence_checked = False
        #: Per-block caches handed to kernels (index arrays, conflict
        #: groups, memoized accounting) — persist across epochs.
        self._kernel_caches: Dict[Tuple[int, int], Dict[Any, Any]] = {}
        #: One thread pool per executor, created lazily and reused across
        #: steps and epochs (a fresh pool per step costs thread spawns on
        #: every schedule step).
        self._pool = None
        self._ready = False
        self.partitions: Optional[parts.IterationPartitions] = None
        self.steps: List[List[sched.Task]] = []
        self.num_workers = 0
        self.num_time = 1
        self.epochs_run = 0
        self._setup()
        if self.synth is not None and self.synth.engaged:
            legal, reason = kernel_batching_legal(self.info, self.plan)
            if not legal:
                from repro.analysis.lint import Diagnostic, location_of

                self.info.diagnostics.append(
                    Diagnostic(
                        code="W503",
                        message=f"synthesized kernel is unused: {reason}",
                        location=location_of(
                            self.info.tree, self.info.source_file
                        ),
                    )
                )

    def _resolve_kernel(self, kernel: Any) -> Optional[Callable[..., Any]]:
        """Resolve ``LoopOptions.kernel`` to a callable (or ``None``).

        ``"auto"`` synthesizes a kernel from the analyzed body (appending
        any W50x fallback diagnostics to the loop's diagnostics), ``"off"``
        disables batching, and a callable passes through unchanged.
        """
        if kernel is None or callable(kernel):
            return kernel
        if not isinstance(kernel, str):
            raise ExecutionError(
                f"kernel must be a callable, 'auto', 'off', or None; "
                f"got {kernel!r}"
            )
        mode = kernel.lower()
        if mode == "off":
            return None
        if mode == "hand":
            raise ExecutionError(
                "kernel='hand' is resolved by app builders (their "
                "use_kernel flag); pass the hand kernel callable, 'auto', "
                "or 'off' here"
            )
        if mode != "auto":
            raise ExecutionError(f"unknown kernel mode {kernel!r}")
        from repro.analysis.synth import synthesize_kernel

        self.synth = synthesize_kernel(self.body, self.info)
        self.info.diagnostics.extend(self.synth.diagnostics)
        return self.synth.kernel

    # ---------------- setup: partition + schedule ---------------------- #

    def _setup(self) -> None:
        info, plan = self.info, self.plan
        entries = list(info.iteration_space.entries())
        if not entries:
            raise ExecutionError("iteration space is empty")
        #: Kept for mid-run re-tiling (:meth:`retune`); the iteration
        #: space is immutable across epochs, so this never goes stale.
        self._entries = entries
        shape = info.iteration_space.shape
        requested = self.cluster.num_workers

        if plan.strategy in (Strategy.ONE_D, Strategy.DATA_PARALLEL):
            dim = plan.space_dim
            workers = min(requested, shape[dim])
            self.partitions = parts.partition_1d(
                entries, dim, shape[dim], workers, balance=self.balance
            )
            self.steps = sched.one_d_schedule(workers)
            self.num_workers, self.num_time = workers, 1
        elif plan.strategy is Strategy.TWO_D:
            space_dim, time_dim = plan.space_dim, plan.time_dim
            workers = min(requested, shape[space_dim])
            if plan.ordered:
                num_time = min(
                    shape[time_dim], workers * self.pipeline_depth
                )
                self.steps = sched.ordered_2d_schedule(workers, num_time)
            else:
                workers = min(workers, shape[time_dim])
                depth = max(
                    1, min(self.pipeline_depth, shape[time_dim] // workers)
                )
                # Write the clamp back so run_summary()["resolved"] and
                # the run-store signature report the depth actually used.
                self.pipeline_depth = depth
                num_time = depth * workers
                self.steps = sched.unordered_2d_schedule(workers, num_time)
            self.partitions = parts.partition_2d(
                entries,
                space_dim,
                time_dim,
                shape[space_dim],
                shape[time_dim],
                workers,
                num_time,
                balance=self.balance,
            )
            if not plan.ordered:
                # Canonical time-sorted block order: makes a worker's
                # per-epoch entry sequence identical at every pipeline
                # depth, which is what lets the tuner re-tile mid-run
                # without perturbing numerics (docs/tuning.md).
                parts.sort_blocks_by_dim(self.partitions, time_dim)
            self.num_workers, self.num_time = workers, num_time
        elif plan.strategy is Strategy.TWO_D_UNIMODULAR:
            workers = requested
            num_time = max(workers, 2)
            self.partitions = parts.partition_transformed(
                entries, plan.transform, workers, num_time
            )
            self.steps = sched.sequential_outer_schedule(workers, num_time)
            self.num_workers, self.num_time = workers, num_time
        else:  # pragma: no cover - enum is exhaustive
            raise ExecutionError(f"unknown strategy {plan.strategy}")

        # Placement-derived communication quantities.
        self._server_arrays: Dict[str, DistArray] = {}
        self._rotated_bytes = 0.0
        self._replicated_bytes = 0.0
        for name, placement in plan.placements.items():
            if name.startswith("<target:"):
                continue
            array = info.arrays[name]
            if placement.kind is PlacementKind.SERVER:
                self._server_arrays[name] = array
            elif placement.kind is PlacementKind.ROTATED:
                self._rotated_bytes += array.nbytes
            elif placement.kind is PlacementKind.REPLICATED:
                self._replicated_bytes += array.nbytes

        self._build_prefetch()
        self._server_ids = {id(array) for array in self._server_arrays.values()}
        self._kernel_supported = self._kernel_legal()
        if self.sanitize:
            # The sanitizer attributes accesses to iterations, which only
            # the interpreted per-entry path can do.
            self._kernel_supported = False
        self._ready = True

    def _build_prefetch(self) -> None:
        """(Re)build the prefetch manager for the current knob settings.

        Called from :meth:`_setup` and again from :meth:`retune` — a
        re-tiled loop's block keys change, so cached prefetch index sets
        must be rebuilt (the epoch after a retune honestly re-pays the
        prefetch-synthesis CPU, exactly like a fresh first epoch)."""
        prefetch_fn = None
        if self.prefetch_mode == "auto" and self._server_arrays:
            prefetch_fn = synthesize_prefetch(
                self.body, self.info, list(self._server_arrays)
            )
        self.prefetch = PrefetchManager(
            self.cluster,
            self._server_arrays,
            prefetch_fn,
            cache_indices=self.cache_prefetch,
            metrics=self.metrics,
        )

    def _kernel_legal(self) -> bool:
        return kernel_batching_legal(self.info, self.plan)[0]

    # ---------------- epoch execution ---------------------------------- #

    @property
    def rotated_block_bytes(self) -> float:
        """Bytes of one rotated-array time partition."""
        if self.num_time == 0:
            return 0.0
        return self._rotated_bytes / self.num_time

    @property
    def rotated_bytes_total(self) -> float:
        """Total bytes of every rotated array (all time partitions)."""
        return self._rotated_bytes

    # ---------------- mid-run retuning --------------------------------- #

    @property
    def max_pipeline_depth(self) -> int:
        """Largest legal pipeline depth for this plan's unordered 2D
        rotation (1 when the plan cannot pipeline at all)."""
        if self.plan.strategy is not Strategy.TWO_D or self.plan.ordered:
            return 1
        shape = self.info.iteration_space.shape
        return max(1, shape[self.plan.time_dim] // self.num_workers)

    def retunable(self) -> Dict[str, Any]:
        """Which knobs a mid-run retune may legally change, and why the
        rest are refused.

        Returns ``{"knobs": {...}, "refused": {...}}``.  ``knobs`` maps
        each adjustable knob to its legal values — ``pipeline_depth`` to
        an inclusive ``(1, max)`` range, ``prefetch`` to its modes,
        ``cache_prefetch`` to both booleans.  ``refused`` maps every
        knob a tuner must NOT touch to the legality argument: anything
        that changes which worker owns which entries (strategy, the
        partition dimensions, balancing) changes the execution
        linearization and with it the floating-point result, so only the
        plan-preserving knobs are offered.  Re-tiling the *time*
        dimension of an unordered 2D rotation is the exception the plan
        proves legal: balanced time cuts nest across depths and each
        worker still visits its row's entries in the same per-column
        order, so numerics stay bit-identical (see ``docs/tuning.md``).
        """
        knobs: Dict[str, Any] = {}
        refused: Dict[str, str] = {
            "strategy": "the dependence-driven strategy is never retuned",
            "force_dims": "changing partition dimensions reassigns entry "
                          "ownership and breaks bit-identity",
            "balance": "re-balancing moves partition cuts and entry "
                       "ownership with them",
        }
        if self.plan.strategy is Strategy.TWO_D and not self.plan.ordered:
            upper = self.max_pipeline_depth
            if upper > 1:
                knobs["pipeline_depth"] = (1, upper)
            else:
                refused["pipeline_depth"] = (
                    "the time extent admits only one depth"
                )
        else:
            refused["pipeline_depth"] = (
                "only the unordered 2D rotation re-tiles its time "
                "dimension legally; this plan is "
                f"{self.plan.strategy.name}"
                + (" (ordered)" if self.plan.ordered else "")
            )
        if self._server_arrays:
            knobs["prefetch"] = ("auto", "none")
        else:
            refused["prefetch"] = "the loop reads no server arrays"
        knobs["cache_prefetch"] = (False, True)
        return {"knobs": knobs, "refused": refused}

    def retune(
        self,
        pipeline_depth: Optional[int] = None,
        prefetch: Optional[str] = None,
        cache_prefetch: Optional[bool] = None,
    ) -> float:
        """Apply a legal knob change between epochs; returns the virtual
        seconds the change costs.

        Only the knobs :meth:`retunable` offers are accepted — anything
        else raises :class:`ExecutionError`.  A depth change re-tiles the
        time dimension (space bounds are *reused*, not recomputed, so
        worker ownership provably cannot move), rebuilds the schedule and
        prefetch manager, clears the per-block kernel caches, and charges
        one re-binning pass over the entries plus one reshuffle of the
        rotated arrays to the virtual clock.  Prefetch-policy changes are
        free (they only swap the access cost model for future blocks).
        """
        allowed = self.retunable()["knobs"]
        cost = 0.0
        rebuild_prefetch = False
        if (
            pipeline_depth is not None
            and pipeline_depth != self.pipeline_depth
        ):
            bounds = allowed.get("pipeline_depth")
            if bounds is None or not (
                bounds[0] <= pipeline_depth <= bounds[1]
            ):
                raise ExecutionError(
                    f"illegal retune: pipeline_depth={pipeline_depth} "
                    f"({self.retunable()['refused'].get('pipeline_depth', 'outside the legal range ' + repr(bounds))})"
                )
            old_depth = self.pipeline_depth
            self.pipeline_depth = pipeline_depth
            try:
                cost += self._retile_time()
            except Exception:
                self.pipeline_depth = old_depth
                raise
            rebuild_prefetch = True
        if prefetch is not None and prefetch != self.prefetch_mode:
            if "prefetch" not in allowed or prefetch not in allowed["prefetch"]:
                raise ExecutionError(
                    f"illegal retune: prefetch={prefetch!r}"
                )
            self.prefetch_mode = prefetch
            rebuild_prefetch = True
        if (
            cache_prefetch is not None
            and bool(cache_prefetch) != self.cache_prefetch
        ):
            self.cache_prefetch = bool(cache_prefetch)
            rebuild_prefetch = True
        if rebuild_prefetch:
            self._build_prefetch()
        return cost

    def _retile_time(self) -> float:
        """Re-tile the unordered 2D time dimension at the current depth.

        Space bounds are carried over verbatim from the existing
        partitions; only the time cuts are recomputed, so every entry
        stays on its worker and each worker's per-column entry order is
        unchanged — the bit-identity invariant the tuner relies on.
        Returns the modeled cost: one CPU pass over the entries to re-bin
        them plus one transfer of the rotated arrays (their time slices
        must be re-cut across the ring)."""
        plan = self.plan
        shape = self.info.iteration_space.shape
        depth = max(
            1, min(self.pipeline_depth, self.max_pipeline_depth)
        )
        self.pipeline_depth = depth
        num_time = depth * self.num_workers
        assert self.partitions is not None
        retiled = parts.retile_time_2d(
            self._entries,
            plan.space_dim,
            plan.time_dim,
            shape[plan.time_dim],
            self.partitions.space_bounds,
            num_time,
            balance=self.balance,
        )
        self._check_cut_nesting(retiled, depth)
        self.partitions = retiled
        self.steps = sched.unordered_2d_schedule(self.num_workers, num_time)
        self.num_time = num_time
        #: Block keys changed shape — cached kernel index arrays and
        #: conflict groups are stale.
        self._kernel_caches.clear()
        rebin = self.cluster.cost.compute_time(len(self._entries))
        reshuffle = self.cluster.network.transfer_time(self._rotated_bytes)
        return rebin + reshuffle

    def _check_cut_nesting(
        self, retiled: parts.IterationPartitions, depth: int
    ) -> None:
        """Refuse a re-tile whose worker-start time cuts moved.

        Bit-identity across depths only needs the ``W`` cuts where each
        worker's rotation *starts* to coincide (interior cuts just split a
        worker's already time-sorted traversal).  Balanced cuts place the
        ``j·d``-th boundary at the prefix-count target ``total·j/W`` for
        every depth ``d``, so they coincide by construction — except in
        degenerately skewed histograms where the cut clamping fires.
        Rather than silently drift the numerics there, refuse the retune
        (the tuner records the refusal and keeps the current depth).
        """
        old_bounds = self.partitions.time_bounds
        new_bounds = retiled.time_bounds
        if old_bounds is None or new_bounds is None:
            return
        old_depth = max(1, self.num_time // self.num_workers)
        for worker in range(self.num_workers):
            old_start = old_bounds[worker * old_depth][0]
            new_start = new_bounds[worker * depth][0]
            if old_start != new_start:
                raise ExecutionError(
                    "illegal retune: re-tiling to pipeline_depth="
                    f"{depth} moves worker {worker}'s rotation start cut "
                    f"({old_start} -> {new_start}; degenerately skewed "
                    "time histogram), which would change the execution "
                    "order and the floating-point result"
                )

    @property
    def kernel_tier(self) -> str:
        """Which update path blocks take, as a stable label.

        ``"scalar"`` (no kernel, or the plan refuses batching),
        ``"hand"`` (an app-registered kernel), or ``"synth:<tier>"``
        (a synthesized kernel: ``synth:vector`` / ``synth:block-loop``).
        Recorded in run-store records so cross-run comparisons can tell a
        genuine regression from a path change.
        """
        if self.kernel is None or not self._kernel_supported:
            return "scalar"
        if self.synth is not None and self.synth.engaged:
            return f"synth:{self.synth.tier}"
        return "hand"

    def run_summary(self) -> Dict[str, Any]:
        """Plan/schedule facts for one run-store record (JSON-safe).

        The emission hook behind ``LoopOptions.run_store`` — pure
        introspection, no effect on execution."""
        plan = self.plan
        return {
            "strategy": plan.strategy.name,
            "ordered": bool(self.info.ordered),
            "space_dim": plan.space_dim,
            "time_dim": plan.time_dim,
            "transformed": plan.transform is not None,
            "num_workers": self.num_workers,
            "num_time": self.num_time,
            "num_steps": len(self.steps),
            "kernel_tier": self.kernel_tier,
            "uses_buffers": bool(self.info.buffers),
            # Requested vs. resolved values of the tunable knobs, so
            # "auto" requests stay introspectable (no sentinel guessing).
            "requested": {
                "pipeline_depth": self.requested_pipeline_depth,
                "prefetch": self.options.prefetch,
                "cache_prefetch": bool(self.options.cache_prefetch),
            },
            "resolved": {
                "pipeline_depth": int(self.pipeline_depth),
                "prefetch": (
                    self.prefetch_mode
                    if self.prefetch.prefetch_fn is not None
                    or self.prefetch_mode == "none"
                    else "none (no prefetch function)"
                ),
                "cache_prefetch": bool(self.cache_prefetch),
            },
        }

    @property
    def kernel_path(self) -> bool:
        """Whether blocks execute through the batched-kernel fast path."""
        return self.kernel is not None and self._kernel_supported

    def run_epoch(
        self, t0: float = 0.0, epoch: Optional[int] = None
    ) -> EpochResult:
        """Execute one full pass over the iteration space.

        Args:
            t0: absolute virtual time at which this epoch starts — used to
                place trace spans on the global timeline and to resolve
                time-pinned fault events (epoch timing itself is
                epoch-relative).
            epoch: logical 1-based epoch number, used to match
                epoch-pinned fault events (crashes/stragglers).  ``None``
                (direct executor use) leaves epoch-pinned events dormant.

        With a fault plan attached, a crash inside this pass truncates it:
        state mutations of the full pass have already happened (the
        simulation executes numerics up front), but the result reports
        only the work finished before the crash was detected at the next
        barrier, sets :attr:`EpochResult.fault`, and charges start →
        detection + detection timeout.  The driver loop
        (:class:`~repro.api.ParallelLoop`) then restores a checkpoint and
        replays — see :mod:`repro.faults.recovery`.
        """
        if not self._ready:
            raise ExecutionError("executor not set up")
        faults = self.faults
        if self._link is not None:
            self._link.begin_epoch(self.epochs_run)
        work_s = np.zeros((self.num_workers, self.num_time))
        flush_bytes = np.zeros((self.num_workers, self.num_time))
        prefetch_bytes = np.zeros((self.num_workers, self.num_time))
        task_records: List[Tuple[sched.Task, _TaskStats]] = []
        validation: Dict[int, List[Tuple[sched.Task, _TaskStats]]] = {}
        tracing = self.tracer.enabled
        #: block_key -> (prefetch, compute, flush, overhead) seconds, the
        #: phase breakdown behind each block span (only kept when tracing).
        phases: Dict[Tuple[int, int], Tuple[float, float, float, float]] = {}

        for step_tasks in self.steps:
            for task, stats in self._run_step(step_tasks):
                block_key = (task.space_idx, task.time_idx)
                compute = self.cluster.cost.compute_time(stats.entries)
                if self.prefetch.prefetch_fn is not None:
                    block = self.partitions.block(*block_key)
                    cost = self.prefetch.block_read_cost(
                        block_key, block, link=self._link
                    )
                else:
                    cost = self.prefetch.random_access_cost_from_counts(
                        stats.server_reads, stats.server_read_bytes
                    )
                flush_transfer = 0.0
                flush_messages = 0
                if stats.flush_bytes:
                    if self._link is not None:
                        outcome = self._link.transfer(
                            stats.flush_bytes,
                            key=("flush",) + tuple(block_key),
                        )
                        flush_transfer = outcome.seconds
                        flush_messages = outcome.attempts
                    else:
                        flush_transfer = self.cluster.network.transfer_time(
                            stats.flush_bytes
                        )
                        flush_messages = 1
                # Serializing the outgoing rotated partition is CPU work on
                # the worker — pipelining cannot hide it (paper Sec. 6.4).
                marshalling = 0.0
                if self.plan.strategy is Strategy.TWO_D:
                    marshalling = (
                        self.cluster.cost.marshalling_s_per_byte
                        * self.rotated_block_bytes
                    )
                # Per-message CPU (request setup, locking): one prefetch
                # request plus one flush message per block, when present
                # (dropped messages pay per-message CPU per resend).
                messages = cost.num_requests + flush_messages
                message_cpu = self.cluster.cost.per_message_cpu_s * messages
                time_idx = task.time_idx or 0
                work_s[task.space_idx, time_idx] = (
                    compute + cost.seconds + flush_transfer + marshalling
                    + message_cpu
                )
                flush_bytes[task.space_idx, time_idx] = stats.flush_bytes
                prefetch_bytes[task.space_idx, time_idx] = cost.nbytes
                if tracing:
                    phases[(task.space_idx, time_idx)] = (
                        cost.seconds,
                        compute,
                        flush_transfer,
                        marshalling + message_cpu,
                    )
                task_records.append((task, stats))
                if self.validate:
                    validation.setdefault(task.step, []).append((task, stats))

        if self.validate:
            self._check_serializability(validation)
            self.metrics.counter("serializability_validations_total").inc()
        if self.sanitize:
            self._sanitize_check()

        straggled = self._apply_stragglers(work_s, phases, epoch, t0, tracing)
        timing = self._timing(work_s)
        crash = (
            faults.claim_crash(epoch, t0, t0 + timing.makespan)
            if faults is not None
            else None
        )

        if crash is None:
            events = self._traffic_events(
                timing, work_s, flush_bytes, prefetch_bytes, t0=t0
            )
            total_bytes = sum(event[2] for event in events)
            busy = float(work_s.sum())
            makespan = timing.makespan
            num_tasks = len(task_records)
            barriers = list(timing.barriers)
            fault_info = None
            cutoff = None
        else:
            # The crash becomes visible at the next barrier; recovery is
            # decided after the detection timeout.  Only work finished
            # before detection counts — the rest is lost and replayed.
            crash_rel = crash.at_s - t0
            detect_rel = timing.makespan
            for b_start, b_end in timing.barriers:
                if b_end >= crash_rel:
                    detect_rel = b_end
                    break
            detect_rel = max(detect_rel, crash_rel)
            makespan = detect_rel + faults.costs.detection_timeout_s
            cutoff = crash_rel
            events = self._traffic_events(
                timing, work_s, flush_bytes, prefetch_bytes, t0=t0,
                cutoff=cutoff,
            )
            total_bytes = sum(event[2] for event in events)
            busy = 0.0
            num_tasks = 0
            for step_tasks in self.steps:
                for task in step_tasks:
                    finish = timing.finish.get((task.worker, task.step))
                    if finish is None or finish > detect_rel:
                        continue
                    busy += float(work_s[task.space_idx, task.time_idx or 0])
                    num_tasks += 1
            barriers = [b for b in timing.barriers if b[1] <= detect_rel]
            fault_info = {
                "kind": (
                    "machine_crash"
                    if crash.crash.machine is not None
                    else "worker_crash"
                ),
                "victim": crash.describe(),
                "worker": crash.crash.worker,
                "machine": crash.crash.machine,
                "at_s": crash.at_s,
                "detected_s": t0 + detect_rel,
                "epoch": epoch,
            }

        capacity = self.num_workers * makespan
        self.epochs_run += 1
        result = EpochResult(
            epoch_time_s=makespan,
            bytes_sent=total_bytes,
            events=events,
            num_tasks=num_tasks,
            utilization=busy / capacity if capacity > 0 else 0.0,
            kernel_path=self.kernel_path,
            barriers=barriers,
            fault=fault_info,
        )
        if tracing:
            self._emit_spans(t0, timing, work_s, phases, result, cutoff=cutoff)
            self._emit_fault_spans(t0, result, straggled)
        if crash is None:
            self._record_metrics(result, work_s)
        elif self.metrics.enabled:
            self.metrics.counter("worker_crashes_total").inc()
            self.metrics.counter("fault_lost_seconds_total").inc(makespan)
        if straggled and self.metrics.enabled:
            self.metrics.counter("straggler_epochs_total").inc()
        return result

    def _apply_stragglers(
        self,
        work_s: np.ndarray,
        phases: Dict[Tuple[int, int], Tuple[float, float, float, float]],
        epoch: Optional[int],
        t0: float,
        tracing: bool,
    ) -> Dict[int, float]:
        """Scale straggling workers' block times in place.

        Time-windowed stragglers need the epoch's extent to compute their
        overlap, so a baseline timing pass estimates it first (only when
        the plan actually has stragglers — the no-fault path never pays
        for it).  ``space_idx == worker`` in every schedule, so scaling
        row ``worker`` of ``work_s`` slows exactly that worker's blocks;
        each phase breakdown is scaled by the same factor so phase spans
        keep partitioning their block.
        """
        if self.faults is None or not self.faults.stragglers:
            return {}
        baseline = self._timing(work_s).makespan
        factors = self.faults.straggle_factors(epoch, t0, t0 + baseline)
        applied: Dict[int, float] = {}
        for worker in sorted(factors):
            if not 0 <= worker < self.num_workers:
                continue
            factor = factors[worker]
            work_s[worker, :] *= factor
            applied[worker] = factor
            if tracing:
                for time_idx in range(self.num_time):
                    breakdown = phases.get((worker, time_idx))
                    if breakdown is not None:
                        phases[(worker, time_idx)] = tuple(
                            value * factor for value in breakdown
                        )
        return applied

    def _emit_fault_spans(
        self, t0: float, result: EpochResult, straggled: Dict[int, float]
    ) -> None:
        """Fault-injection spans on the ``faults`` track (tracing only)."""
        tracer, process = self.tracer, self.trace_process
        end = t0 + result.epoch_time_s
        for worker, factor in straggled.items():
            tracer.add_span(
                f"straggler worker{worker} x{factor:.2f}",
                "straggler",
                t0,
                end,
                track="faults",
                process=process,
                args={"worker": worker, "slowdown": factor},
            )
        if result.fault is not None:
            tracer.add_span(
                f"crash {result.fault['victim']}",
                "fault",
                result.fault["at_s"],
                end,
                track="faults",
                process=process,
                args=dict(result.fault),
            )

    def _record_metrics(self, result: EpochResult, work_s: np.ndarray) -> None:
        metrics = self.metrics
        if not metrics.enabled:
            return
        metrics.counter("epochs_total").inc()
        metrics.counter("blocks_total").inc(result.num_tasks)
        entries = self.partitions.total_entries
        metrics.counter("entries_total").inc(entries)
        path = "kernel_blocks_total" if result.kernel_path \
            else "scalar_blocks_total"
        metrics.counter(path).inc(result.num_tasks)
        metrics.gauge("utilization").set(result.utilization)
        if result.epoch_time_s > 0:
            metrics.gauge("entries_per_virtual_s").set(
                entries / result.epoch_time_s
            )
        block_seconds = metrics.histogram("block_seconds")
        for value in work_s.flat:
            if value > 0.0:
                block_seconds.observe(float(value))

    def _emit_spans(
        self,
        t0: float,
        timing: sched.ScheduleTiming,
        work_s: np.ndarray,
        phases: Dict[Tuple[int, int], Tuple[float, float, float, float]],
        result: EpochResult,
        cutoff: Optional[float] = None,
    ) -> None:
        """Place this epoch's execution on the virtual timeline.

        Taxonomy (see ``docs/observability.md``): one ``epoch`` span on the
        ``epochs`` track with ``barrier`` children; per worker track, one
        ``block`` span per executed block whose duration is exactly that
        block's charged work, with nested phase spans (``prefetch`` /
        ``compute`` / ``flush`` / ``overhead``) partitioning it.  Traffic
        spans are emitted by :meth:`_traffic_events`.

        ``cutoff`` (epoch-relative) truncates an aborted pass at the crash
        point: blocks starting after it are not shown, a block in flight
        is clipped and marked aborted.
        """
        tracer, process = self.tracer, self.trace_process
        aborted = result.fault is not None
        epoch_name = f"epoch {self.epochs_run}"
        if aborted:
            epoch_name += " (aborted)"
        tracer.add_span(
            epoch_name,
            "epoch",
            t0,
            t0 + result.epoch_time_s,
            track="epochs",
            process=process,
            args={
                "utilization": result.utilization,
                "bytes_sent": result.bytes_sent,
                "num_tasks": result.num_tasks,
                "kernel_path": result.kernel_path,
                "strategy": self.plan.strategy.name,
            },
        )
        for t_start, t_end in result.barriers:
            tracer.add_span(
                "barrier",
                "barrier",
                t0 + t_start,
                t0 + t_end,
                track="epochs",
                process=process,
                depth=1,
            )
        phase_names = ("prefetch", "compute", "flush", "overhead")
        for step_tasks in self.steps:
            for task in step_tasks:
                finish = timing.finish.get((task.worker, task.step))
                if finish is None:
                    continue
                time_idx = task.time_idx or 0
                duration = float(work_s[task.space_idx, time_idx])
                start = finish - duration
                if cutoff is not None and start >= cutoff:
                    continue
                clipped = cutoff is not None and finish > cutoff
                end = min(finish, cutoff) if clipped else finish
                track = f"worker{task.worker}"
                breakdown = phases.get((task.space_idx, time_idx))
                args = {"step": task.step, "space": task.space_idx,
                        "time": time_idx}
                if clipped:
                    args["aborted"] = True
                if breakdown is not None:
                    args.update(zip(phase_names, breakdown))
                tracer.add_span(
                    f"block[{task.space_idx},{time_idx}]",
                    "block",
                    t0 + start,
                    t0 + end,
                    track=track,
                    process=process,
                    args=args,
                )
                if breakdown is None or clipped:
                    continue
                cursor = start
                for phase_name, phase_s in zip(phase_names, breakdown):
                    if phase_s <= 0.0:
                        continue
                    tracer.add_span(
                        phase_name,
                        phase_name,
                        t0 + cursor,
                        t0 + cursor + phase_s,
                        track=track,
                        process=process,
                        depth=1,
                    )
                    cursor += phase_s

    def _run_step(
        self, step_tasks: List[sched.Task]
    ) -> List[Tuple[sched.Task, _TaskStats]]:
        """Execute one step's blocks: serially (a linearization) or on a
        thread pool (genuinely concurrent; safe because a correct plan's
        same-step blocks touch disjoint elements)."""
        if self.concurrency == "serial" or len(step_tasks) <= 1:
            return [(task, self._run_task(task)) for task in step_tasks]
        if self._pool is None:
            import concurrent.futures

            self._pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.num_workers
            )
        stats = list(self._pool.map(self._run_task, step_tasks))
        return list(zip(step_tasks, stats))

    def close(self) -> None:
        """Release the persistent thread pool (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def _run_task(
        self, task: sched.Task, force_scalar: bool = False
    ) -> _TaskStats:
        block_key = (task.space_idx, task.time_idx or 0)
        block = self.partitions.block(*block_key)
        use_kernel = (
            self.kernel is not None
            and self._kernel_supported
            and not force_scalar
        )
        if (
            use_kernel
            and self.equivalence_check
            and not self._equivalence_checked
            and block
        ):
            self._equivalence_checked = True
            return self._run_task_checked(task, block_key, block)
        if self.sanitize:
            broker: _AccountingBroker = _SanitizingBroker(
                self._server_ids, self.validate
            )
        else:
            broker = _AccountingBroker(self._server_ids, self.validate)
        with access.worker_scope(task.worker), access.install_broker(broker):
            if use_kernel:
                kctx = KernelContext(
                    broker,
                    task.worker,
                    self._kernel_caches.setdefault(block_key, {}),
                )
                self.kernel(block, kctx)
            else:
                self._run_scalar(block, task.worker, broker)
        if self.sanitize:
            # list.extend is atomic under the GIL, so thread-pool tasks
            # can merge their local records without a lock.
            self._sanitize_records.extend(broker.records)
        stats = broker.stats
        stats.entries = len(block)
        # Flush remaining buffered writes at the block boundary: a worker
        # synchronizes at most once per partition (paper Sec. 4.3).
        for buffer in self.info.buffers.values():
            stats.flush_bytes += buffer.pending_bytes(task.worker)
            buffer.flush_worker(task.worker)
        return stats

    def _run_scalar(
        self, block: Any, worker: int, broker: _AccountingBroker
    ) -> None:
        body = self.body
        buffers = list(self.info.buffers.values())
        sanitizing = self.sanitize
        for key, value in block:
            if sanitizing:
                broker.iteration = key
            body(key, value)
            for buffer in buffers:
                if buffer.tick(worker):
                    broker.stats.flush_bytes += buffer.pending_bytes(worker)
                    buffer.flush_worker(worker)

    # ---------------- kernel/scalar equivalence check ------------------- #

    def _run_task_checked(
        self, task: sched.Task, block_key: Tuple[int, int], block: Any
    ) -> _TaskStats:
        """Run one block through both paths and demand identical outcomes.

        Executes the scalar body first, snapshots the resulting state,
        rewinds, executes the kernel, and compares array/buffer contents
        (bitwise) plus every accounting quantity.  The kernel run's state is
        kept, so a passing check leaves execution exactly as if the kernel
        alone had run.
        """
        saved = self._snapshot_state()
        scalar_stats = self._run_task(task, force_scalar=True)
        scalar_state = self._snapshot_state()
        self._restore_state(saved)
        kernel_stats = self._run_task(task)
        kernel_state = self._snapshot_state()
        problems = self._compare_states(scalar_state, kernel_state)
        problems += self._compare_stats(scalar_stats, kernel_stats)
        if problems:
            raise ExecutionError(
                "kernel/scalar equivalence check failed for block "
                f"{block_key}: " + "; ".join(problems)
            )
        return kernel_stats

    def _state_arrays(self) -> Dict[str, Any]:
        """Arrays whose contents the check must compare: everything the
        body references plus every buffer's flush target (a target need
        not appear in the body at all)."""
        arrays = dict(self.info.arrays)
        for buffer in self.info.buffers.values():
            arrays.setdefault(buffer.target.name, buffer.target)
        return arrays

    def _snapshot_state(self) -> Dict[str, Any]:
        arrays: Dict[str, Tuple[str, Any]] = {}
        for name, array in self._state_arrays().items():
            if not array.is_materialized:
                continue
            if array.sparse:
                arrays[name] = (
                    "sparse",
                    {
                        key: (
                            value.copy()
                            if isinstance(value, np.ndarray)
                            else value
                        )
                        for key, value in array._entries.items()
                    },
                )
            else:
                arrays[name] = ("dense", array._dense.copy())
        buffers: Dict[str, Tuple[Dict[int, Dict], Dict[int, int]]] = {}
        for name, buffer in self.info.buffers.items():
            buffers[name] = (
                {w: dict(slot) for w, slot in buffer._pending.items()},
                dict(buffer._age),
            )
        return {"arrays": arrays, "buffers": buffers}

    def _restore_state(self, saved: Dict[str, Any]) -> None:
        state_arrays = self._state_arrays()
        for name, (kind, data) in saved["arrays"].items():
            array = state_arrays[name]
            if kind == "dense":
                array._dense[...] = data
            else:
                array._entries.clear()
                array._entries.update(
                    (
                        key,
                        value.copy()
                        if isinstance(value, np.ndarray)
                        else value,
                    )
                    for key, value in data.items()
                )
        for name, (pending, age) in saved["buffers"].items():
            buffer = self.info.buffers[name]
            buffer._pending.clear()
            buffer._pending.update(
                (worker, dict(slot)) for worker, slot in pending.items()
            )
            buffer._age.clear()
            buffer._age.update(age)

    @staticmethod
    def _compare_states(
        scalar: Dict[str, Any], kernel: Dict[str, Any]
    ) -> List[str]:
        problems: List[str] = []
        for name, (kind, s_data) in scalar["arrays"].items():
            _k_kind, k_data = kernel["arrays"][name]
            if kind == "dense":
                if not np.array_equal(s_data, k_data):
                    problems.append(f"array {name!r} values differ")
            elif s_data.keys() != k_data.keys():
                problems.append(f"array {name!r} sparse key sets differ")
            elif any(
                not np.array_equal(s_data[key], k_data[key])
                for key in s_data
            ):
                problems.append(f"array {name!r} sparse values differ")
        for name, (s_pending, _s_age) in scalar["buffers"].items():
            k_pending, _k_age = kernel["buffers"][name]
            if s_pending.keys() != k_pending.keys():
                problems.append(f"buffer {name!r} worker slots differ")
                continue
            for worker, s_slot in s_pending.items():
                k_slot = k_pending[worker]
                if s_slot.keys() != k_slot.keys():
                    problems.append(
                        f"buffer {name!r} pending keys differ (worker {worker})"
                    )
                elif any(
                    not np.array_equal(s_slot[key], k_slot[key])
                    for key in s_slot
                ):
                    problems.append(
                        f"buffer {name!r} pending values differ (worker {worker})"
                    )
        return problems

    @staticmethod
    def _compare_stats(scalar: _TaskStats, kernel: _TaskStats) -> List[str]:
        problems: List[str] = []
        for field_name in (
            "entries",
            "server_reads",
            "server_read_bytes",
            "flush_bytes",
        ):
            s_value = getattr(scalar, field_name)
            k_value = getattr(kernel, field_name)
            if s_value != k_value:
                problems.append(
                    f"{field_name}: scalar={s_value} kernel={k_value}"
                )
        # Access records are order-insensitive for the serializability
        # checker, so compare them as multisets.
        if Counter(scalar.accesses) != Counter(kernel.accesses):
            problems.append("validation access records differ")
        return problems

    # ---------------- timing + traffic --------------------------------- #

    def _timing(self, work_s: np.ndarray) -> sched.ScheduleTiming:
        plan = self.plan
        transfer = self._link.transfer_time if self._link is not None else None
        if plan.strategy in (Strategy.ONE_D, Strategy.DATA_PARALLEL):
            return sched.time_one_d(work_s, self.cluster)
        if plan.strategy is Strategy.TWO_D:
            if plan.ordered:
                return sched.time_ordered_2d(
                    work_s, self.cluster, self.rotated_block_bytes,
                    transfer_time=transfer,
                )
            return sched.time_unordered_2d(
                work_s, self.cluster, self.rotated_block_bytes,
                transfer_time=transfer,
            )
        return sched.time_sequential_outer(work_s, self.cluster)

    def _traffic_events(
        self,
        timing: sched.ScheduleTiming,
        work_s: np.ndarray,
        flush_bytes: np.ndarray,
        prefetch_bytes: np.ndarray,
        t0: float = 0.0,
        cutoff: Optional[float] = None,
    ) -> List[Tuple[float, float, float, str]]:
        """Epoch-relative traffic events; when tracing, the same transfers
        are also emitted as spans on per-kind network tracks (offset by
        ``t0`` onto the global timeline, with worker/hop attribution).

        With an unreliable link attached, each message's duration and
        bytes come from its memoized drop outcome (resent bytes count);
        the message keys match the ones the timing model and the prefetch
        manager used, so both sides of the accounting agree.  ``cutoff``
        (epoch-relative) suppresses messages an aborted pass never sent.
        """
        tracer, process = self.tracer, self.trace_process
        tracing = tracer.enabled
        metrics = self.metrics
        link = self._link

        events: List[Tuple[float, float, float, str]] = []

        def emit(t_start, t_end, nbytes, kind, worker=None, hop=None):
            if cutoff is not None and t_start >= cutoff:
                return
            events.append((t_start, t_end, nbytes, kind))
            metrics.counter(f"traffic_bytes_{kind}").inc(nbytes)
            if tracing:
                args: Dict[str, Any] = {"nbytes": nbytes}
                if worker is not None:
                    args["worker"] = worker
                if hop is not None:
                    args["hop"] = hop
                tracer.add_span(
                    kind,
                    kind,
                    t0 + t_start,
                    t0 + t_end,
                    track=f"net:{kind}",
                    process=process,
                    args=args,
                )

        if self._replicated_bytes:
            nbytes = self._replicated_bytes * self.cluster.num_machines
            if link is not None:
                outcome = link.transfer(
                    self._replicated_bytes, key=("broadcast",)
                )
                duration = outcome.seconds
                nbytes *= outcome.attempts
            else:
                duration = self.cluster.network.transfer_time(
                    self._replicated_bytes
                )
            emit(0.0, duration, nbytes, "broadcast")
        rotated = self.rotated_block_bytes
        num_workers = self.num_workers
        for step_tasks in self.steps:
            for task in step_tasks:
                finish = timing.finish.get((task.worker, task.step))
                if finish is None:
                    continue
                time_idx = task.time_idx or 0
                start = finish - float(work_s[task.space_idx, time_idx])
                if rotated and self.plan.strategy is Strategy.TWO_D:
                    nbytes = rotated
                    if link is not None:
                        # Same message keys as the timing model: per global
                        # step when ordered, per (sender, step) otherwise.
                        key = (
                            ("rotation", task.step)
                            if self.plan.ordered
                            else ("rotation", task.worker, task.step)
                        )
                        outcome = link.transfer(rotated, key=key)
                        duration = outcome.seconds
                        nbytes = outcome.nbytes_sent
                    else:
                        duration = self.cluster.network.transfer_time(rotated)
                    # The finished rotated partition moves to the worker's
                    # predecessor in rotation order.
                    hop = (
                        f"{task.worker}->"
                        f"{(task.worker - 1) % num_workers}"
                    )
                    emit(finish, finish + duration, nbytes, "rotation",
                         worker=task.worker, hop=hop)
                fb = float(flush_bytes[task.space_idx, time_idx])
                if fb:
                    if link is not None:
                        outcome = link.transfer(
                            fb, key=("flush", task.space_idx, time_idx)
                        )
                        duration = outcome.seconds
                        fb = outcome.nbytes_sent
                    else:
                        duration = self.cluster.network.transfer_time(fb)
                    emit(finish, finish + duration, fb, "flush",
                         worker=task.worker)
                pb = float(prefetch_bytes[task.space_idx, time_idx])
                if pb:
                    if link is not None:
                        outcome = link.transfer(
                            pb, key=("prefetch", task.space_idx, time_idx)
                        )
                        duration = outcome.seconds
                        pb = outcome.nbytes_sent
                    else:
                        duration = self.cluster.network.transfer_time(pb)
                    emit(start, start + duration, pb, "prefetch",
                         worker=task.worker)
        return events

    # ---------------- serializability validation ----------------------- #

    def _check_serializability(
        self, by_step: Dict[int, List[Tuple[sched.Task, _TaskStats]]]
    ) -> None:
        """Verify blocks claimed concurrent touch disjoint elements.

        Two same-step blocks conflict when they access an overlapping index
        of the same non-server array and at least one access is a write.
        Server-array accesses are exempt — they are the loop's explicitly
        relaxed dependences (buffered writes / parameter-server reads).
        """
        server_names = set(self._server_arrays)
        for step, records in by_step.items():
            for left in range(len(records)):
                task_a, stats_a = records[left]
                for right in range(left + 1, len(records)):
                    task_b, stats_b = records[right]
                    self._check_pair(
                        step, task_a, stats_a, task_b, stats_b, server_names
                    )

    @staticmethod
    def _check_pair(step, task_a, stats_a, task_b, stats_b, server_names):
        writes_a = [
            (name, idx) for name, idx, w in stats_a.accesses
            if w and name not in server_names
        ]
        writes_b = [
            (name, idx) for name, idx, w in stats_b.accesses
            if w and name not in server_names
        ]
        touched_b: Dict[str, List[Tuple[Any, ...]]] = {}
        for name, idx, _w in stats_b.accesses:
            if name not in server_names:
                touched_b.setdefault(name, []).append(idx)
        touched_a: Dict[str, List[Tuple[Any, ...]]] = {}
        for name, idx, _w in stats_a.accesses:
            if name not in server_names:
                touched_a.setdefault(name, []).append(idx)
        for name, idx in writes_a:
            for other in touched_b.get(name, ()):  # write vs anything
                if indices_overlap(idx, other):
                    raise ExecutionError(
                        f"serializability violation at step {step}: workers "
                        f"{task_a.worker} and {task_b.worker} both touch "
                        f"{name}{idx} (write involved)"
                    )
        for name, idx in writes_b:
            for other in touched_a.get(name, ()):
                if indices_overlap(idx, other):
                    raise ExecutionError(
                        f"serializability violation at step {step}: workers "
                        f"{task_a.worker} and {task_b.worker} both touch "
                        f"{name}{idx} (write involved)"
                    )

    # ---------------- sanitize mode (shadow-access check) --------------- #

    def _sanitize_check(self) -> None:
        """Cross-check the epoch's shadow-access records against the plan.

        Drains :attr:`_sanitize_records`, runs :func:`repro.sanitizer.
        check_epoch`, bumps the sanitize counters, and raises
        :class:`~repro.sanitizer.SanitizerError` (fail-stop) on any
        violation — a sanitized run that completes is a certificate that
        the analyzer's claims held for every executed iteration.
        """
        from repro import sanitizer

        records, self._sanitize_records = self._sanitize_records, []
        server_names = frozenset(
            array.name for array in self._server_arrays.values()
        )
        prefetch_fn = self.prefetch.prefetch_fn
        values = None
        if prefetch_fn is not None and server_names:
            if self._sanitize_values is None:
                self._sanitize_values = dict(
                    self.info.iteration_space.entries()
                )
            values = self._sanitize_values
        diagnostics = sanitizer.check_epoch(
            self.info,
            self.plan,
            records,
            server_names=server_names,
            prefetch_fn=prefetch_fn,
            values=values,
        )
        self.metrics.counter("sanitize_epochs_total").inc()
        self.metrics.counter("sanitize_records_total").inc(len(records))
        if diagnostics:
            self.metrics.counter("sanitize_violations_total").inc(
                len(diagnostics)
            )
            raise sanitizer.SanitizerError(diagnostics)
