"""Fault plans: *what* fails, *when*, deterministically.

A :class:`FaultPlan` is a declarative schedule of injected failures —
worker/machine crashes, transient message drops, straggler slowdowns —
pinned to virtual time (or logical epochs) rather than wall time, so a
plan replays identically on every run.  Drop decisions use a stateless
hash of ``(seed, epoch, message key, attempt)`` instead of a sequential
RNG stream: the outcome for one message never depends on how many other
messages were queried before it, which keeps injection deterministic even
when instrumentation changes the query order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import FaultError
from repro.runtime.network import RetryPolicy

__all__ = [
    "WorkerCrash",
    "Straggler",
    "MessageDrops",
    "RecoveryCosts",
    "FiredCrash",
    "FaultPlan",
]


@dataclass(frozen=True)
class WorkerCrash:
    """One crash event: a worker (or a whole machine) dies.

    Give either an absolute virtual time (``at_s``) or a logical epoch
    plus a position within it (``epoch``/``frac``).  ``machine`` crashes
    every worker on that machine; otherwise ``worker`` names the victim.
    """

    worker: int = 0
    machine: Optional[int] = None
    at_s: Optional[float] = None
    epoch: Optional[int] = None
    frac: float = 0.5

    def __post_init__(self) -> None:
        if (self.at_s is None) == (self.epoch is None):
            raise FaultError(
                "WorkerCrash needs exactly one of at_s= or epoch="
            )
        if self.epoch is not None and self.epoch < 1:
            raise FaultError("crash epoch is 1-based and must be >= 1")
        if not 0.0 <= self.frac <= 1.0:
            raise FaultError("crash frac must be in [0, 1]")


@dataclass(frozen=True)
class Straggler:
    """A transient slowdown: one worker's blocks take ``slowdown``× longer.

    Scope it to a logical ``epoch`` or to an absolute virtual time window
    ``[t_start, t_end)`` (a window overlapping an epoch scales that
    epoch's work by the overlap fraction).
    """

    worker: int
    slowdown: float = 2.0
    epoch: Optional[int] = None
    t_start: Optional[float] = None
    t_end: Optional[float] = None

    def __post_init__(self) -> None:
        window = self.t_start is not None and self.t_end is not None
        if (self.epoch is None) == (not window):
            raise FaultError(
                "Straggler needs epoch= or both t_start=/t_end="
            )
        if self.slowdown < 1.0:
            raise FaultError("slowdown must be >= 1.0")


@dataclass(frozen=True)
class MessageDrops:
    """Transient network loss: each send is dropped with ``probability``."""

    probability: float
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability < 1.0:
            raise FaultError("drop probability must be in [0, 1)")


@dataclass(frozen=True)
class RecoveryCosts:
    """Virtual-time prices of detecting and repairing a crash.

    Attributes:
        detection_timeout_s: heartbeat timeout between the barrier at
            which the crash becomes visible and the recovery decision.
        restart_s: spawning a replacement worker process.
        restore_bandwidth_bytes_per_s: disk/NFS bandwidth for writing and
            reading checkpoints (charged per checkpointed byte).
    """

    detection_timeout_s: float = 5e-3
    restart_s: float = 2e-2
    restore_bandwidth_bytes_per_s: float = 1e9


@dataclass(frozen=True)
class FiredCrash:
    """A crash event resolved onto the timeline of one epoch."""

    crash: WorkerCrash
    at_s: float

    def describe(self) -> str:
        if self.crash.machine is not None:
            return f"machine {self.crash.machine}"
        return f"worker {self.crash.worker}"


def _splitmix64(value: int) -> int:
    """One round of splitmix64: a fast, well-mixed 64-bit permutation."""
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


def stable_uniform(*parts) -> float:
    """A uniform [0, 1) draw determined entirely by ``parts``.

    Mixes each part (ints, floats, strings) through splitmix64; there is
    no hidden stream position, so the same key always yields the same
    draw regardless of query order.
    """
    state = 0
    for part in parts:
        if isinstance(part, float):
            part = hash(part)
        elif isinstance(part, str):
            part = hash(part) & 0xFFFFFFFFFFFFFFFF
        state = _splitmix64(state ^ (int(part) & 0xFFFFFFFFFFFFFFFF))
    return state / 2.0 ** 64


class FaultPlan:
    """A deterministic schedule of injected failures.

    Attributes:
        crashes: :class:`WorkerCrash` events; each fires at most once.
        stragglers: :class:`Straggler` slowdowns.
        drops: transient :class:`MessageDrops`, or ``None`` for a
            loss-free network.
        costs: recovery cost model.
        retry: the network's retry/backoff policy for dropped messages.
        seed: mixed into every drop decision.

    The plan carries one piece of mutable state: which crashes have
    already fired.  Call :meth:`reset` (or build a fresh plan) before
    replaying a run from scratch.
    """

    def __init__(
        self,
        crashes: Iterable[WorkerCrash] = (),
        stragglers: Iterable[Straggler] = (),
        drops: Optional[MessageDrops] = None,
        costs: Optional[RecoveryCosts] = None,
        retry: Optional[RetryPolicy] = None,
        seed: int = 0,
    ) -> None:
        self.crashes: Tuple[WorkerCrash, ...] = tuple(crashes)
        self.stragglers: Tuple[Straggler, ...] = tuple(stragglers)
        self.drops = drops
        self.costs = costs if costs is not None else RecoveryCosts()
        self.retry = retry if retry is not None else RetryPolicy()
        self.seed = int(seed)
        self._fired: set = set()

    def __repr__(self) -> str:
        return (
            f"FaultPlan(crashes={len(self.crashes)}, "
            f"stragglers={len(self.stragglers)}, "
            f"drop_p={self.drops.probability if self.drops else 0.0}, "
            f"seed={self.seed})"
        )

    def reset(self) -> None:
        """Forget which crashes have fired (for replaying from scratch)."""
        self._fired.clear()

    # ---------------- crash resolution --------------------------------- #

    def claim_crash(
        self, epoch: Optional[int], t0: float, t1: float
    ) -> Optional[FiredCrash]:
        """The first unfired crash landing in ``[t0, t1)``, marked fired.

        Epoch-pinned crashes fire when ``epoch`` matches, at
        ``t0 + frac * (t1 - t0)``.  Time-pinned crashes fire in the first
        epoch whose window reaches their ``at_s`` — including overdue
        events whose time passed while the clock was paused for recovery
        (clamped to ``t0``), so a crash scheduled during a restore still
        happens instead of silently vanishing.
        """
        for index, crash in enumerate(self.crashes):
            if index in self._fired:
                continue
            at: Optional[float] = None
            if crash.epoch is not None:
                if epoch is not None and crash.epoch == epoch:
                    at = t0 + crash.frac * max(t1 - t0, 0.0)
            elif crash.at_s is not None and crash.at_s < t1:
                at = min(max(crash.at_s, t0), t1)
            if at is not None:
                self._fired.add(index)
                return FiredCrash(crash=crash, at_s=at)
        return None

    # ---------------- stragglers --------------------------------------- #

    def straggle_factors(
        self, epoch: Optional[int], t0: float, t1: float
    ) -> Dict[int, float]:
        """Per-worker slowdown factors applying to the epoch ``[t0, t1)``.

        A time-windowed straggler overlapping part of the epoch scales by
        the overlap fraction (the worker ran slow for that share of the
        pass); overlapping stragglers take the max factor per worker.
        """
        factors: Dict[int, float] = {}
        for straggler in self.stragglers:
            factor = 1.0
            if straggler.epoch is not None:
                if epoch is not None and straggler.epoch == epoch:
                    factor = straggler.slowdown
            elif t1 > t0:
                lo = max(t0, straggler.t_start)
                hi = min(t1, straggler.t_end)
                if hi > lo:
                    overlap = (hi - lo) / (t1 - t0)
                    factor = 1.0 + (straggler.slowdown - 1.0) * overlap
            if factor > 1.0:
                current = factors.get(straggler.worker, 1.0)
                factors[straggler.worker] = max(current, factor)
        return factors

    # ---------------- message drops ------------------------------------ #

    def drop_count(self, epoch_serial: int, key: Tuple) -> int:
        """How many leading attempts of one message are dropped.

        Each attempt is an independent ``stable_uniform`` draw against the
        drop probability; the final permitted attempt is never dropped
        (updates cost time, never data).
        """
        drops = self.drops
        if drops is None or drops.probability <= 0.0:
            return 0
        count = 0
        for attempt in range(self.retry.max_attempts - 1):
            draw = stable_uniform(
                self.seed, drops.seed, epoch_serial, *key, attempt
            )
            if draw < drops.probability:
                count += 1
            else:
                break
        return count

    # ---------------- constructors ------------------------------------- #

    @classmethod
    def random(
        cls,
        seed: int,
        epochs: int,
        num_workers: int,
        crashes: int = 1,
        stragglers: int = 0,
        straggler_slowdown: float = 3.0,
        drop_probability: float = 0.0,
        costs: Optional[RecoveryCosts] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> "FaultPlan":
        """A seeded random plan over ``epochs`` passes of ``num_workers``.

        Crash/straggler victims, epochs and in-epoch positions are drawn
        from ``numpy.random.default_rng(seed)``; the same arguments always
        produce the same plan.
        """
        if epochs < 1 or num_workers < 1:
            raise FaultError("random plan needs epochs >= 1, num_workers >= 1")
        rng = np.random.default_rng(seed)
        crash_events: List[WorkerCrash] = [
            WorkerCrash(
                worker=int(rng.integers(num_workers)),
                epoch=int(rng.integers(1, epochs + 1)),
                frac=float(rng.uniform(0.1, 0.9)),
            )
            for _ in range(crashes)
        ]
        straggler_events: List[Straggler] = [
            Straggler(
                worker=int(rng.integers(num_workers)),
                epoch=int(rng.integers(1, epochs + 1)),
                slowdown=float(rng.uniform(1.5, max(1.5, straggler_slowdown))),
            )
            for _ in range(stragglers)
        ]
        drops = (
            MessageDrops(probability=drop_probability, seed=seed)
            if drop_probability > 0.0
            else None
        )
        return cls(
            crashes=crash_events,
            stragglers=straggler_events,
            drops=drops,
            costs=costs,
            retry=retry,
            seed=seed,
        )

    @classmethod
    def from_spec(
        cls, spec: str, epochs: int, num_workers: int
    ) -> "FaultPlan":
        """Parse a CLI spec like ``"seed=7,crashes=1,drops=0.02,stragglers=1"``.

        Keys: ``seed`` (int, default 0), ``crashes`` (int, default 1),
        ``stragglers`` (int, default 0), ``slowdown`` (float), ``drops``
        (probability).  Events are drawn via :meth:`random`.
        """
        values: Dict[str, str] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise FaultError(f"bad --faults item {item!r} (expected key=value)")
            key, _, value = item.partition("=")
            values[key.strip()] = value.strip()
        known = {"seed", "crashes", "stragglers", "slowdown", "drops"}
        unknown = set(values) - known
        if unknown:
            raise FaultError(
                f"unknown --faults key(s) {sorted(unknown)}; known: {sorted(known)}"
            )
        try:
            return cls.random(
                seed=int(values.get("seed", 0)),
                epochs=epochs,
                num_workers=num_workers,
                crashes=int(values.get("crashes", 1)),
                stragglers=int(values.get("stragglers", 0)),
                straggler_slowdown=float(values.get("slowdown", 3.0)),
                drop_probability=float(values.get("drops", 0.0)),
            )
        except ValueError as exc:
            raise FaultError(f"bad --faults spec {spec!r}: {exc}")
