"""Ablation A2 — histogram-balanced vs. equal-width partitioning (Sec. 4.3).

The paper: "partitioning the iteration space into equal-sized [-width]
partitions results in imbalanced workload among workers" for skewed data;
Orion computes per-dimension histograms and cuts balanced ranges.  This
ablation runs SGD MF on a power-law-skewed rating matrix both ways and
compares worker load imbalance and time per iteration.
"""

import numpy as np
import pytest

import _workloads as wl
from repro.apps import build_sgd_mf

EPOCHS = 3


def _run(balance: bool, randomize: bool = False):
    dataset = wl.netflix_skewed()
    if randomize:
        # The paper's other skew remedy (Sec. 4.3): permute coordinates so
        # even equal-width ranges are balanced.  Build the program from the
        # permuted iteration space.
        from repro.core.distarray import DistArray
        from repro.data.synthetic import MFDataset

        shuffled = (
            DistArray.from_entries(
                dataset.entries, name="ab2_shuffled", shape=dataset.shape
            )
            .materialize()
            .randomize(seed=7)
        )
        dataset = MFDataset(
            entries=sorted(shuffled.entries()),
            num_rows=dataset.num_rows,
            num_cols=dataset.num_cols,
            rank=dataset.rank,
        )
    program = build_sgd_mf(
        dataset,
        cluster=wl.mf_cluster(),
        hyper=wl.MF_HYPER,
        balance=balance,
    )
    history = program.run(EPOCHS)
    loads = program.train_loop.executor.partitions.size_matrix().sum(axis=1)
    imbalance = float(loads.max() / max(loads.mean(), 1e-9))
    return history.time_per_iteration(), imbalance


@pytest.mark.benchmark(group="ablation")
def test_ablation_partitioning(benchmark, report):
    results = benchmark.pedantic(
        lambda: (_run(True), _run(False), _run(False, randomize=True)),
        rounds=1,
        iterations=1,
    )
    (balanced_t, balanced_imb), (equal_t, equal_imb), (rand_t, rand_imb) = results
    rows = [
        ("histogram-balanced", f"{balanced_t:.4f}", f"{balanced_imb:.2f}x"),
        ("equal-width", f"{equal_t:.4f}", f"{equal_imb:.2f}x"),
        ("equal-width + randomize", f"{rand_t:.4f}", f"{rand_imb:.2f}x"),
    ]
    report(
        "Ablation A2: partitioning of a skewed iteration space (SGD MF)",
        wl.fmt_table(
            ["partitioning", "s/iter", "max/mean worker load"], rows
        )
        + "\nexpected shape: histogram balancing (or coordinate "
        "randomization, the paper's other remedy) cuts both imbalance and "
        "time per iteration on power-law data",
    )
    assert balanced_imb < equal_imb
    assert balanced_t < equal_t
    # Randomize also repairs equal-width partitioning (paper Sec. 4.3).
    assert rand_imb < equal_imb
    assert rand_t < equal_t
