"""Failure injection: worker crashes, checkpoint-based recovery.

The paper's fault-tolerance story (Sec. 4.3) is checkpoint-every-N-passes
plus restart.  These tests kill a real worker process mid-training and
verify the runner fails *cleanly* (a diagnosable ExecutionError, no hang),
then recover through a CheckpointPolicy restore and a fresh runner —
continuing training from the checkpointed pass.
"""

import numpy as np
import pytest

from repro.apps import MFHyper, build_sgd_mf
from repro.data import netflix_like
from repro.errors import CheckpointError, ExecutionError
from repro.runtime.checkpoint import CheckpointPolicy
from repro.runtime.cluster import ClusterSpec
from repro.runtime.distributed import MultiprocessRunner


@pytest.fixture(scope="module")
def mf_data():
    return netflix_like(num_rows=36, num_cols=30, num_ratings=700, seed=81)


@pytest.fixture
def cluster():
    return ClusterSpec(num_machines=2, workers_per_machine=2)


def _program(mf_data, cluster):
    return build_sgd_mf(
        mf_data, cluster=cluster, hyper=MFHyper(rank=4, step_size=0.05), seed=9
    )


class TestWorkerCrash:
    def test_dead_worker_raises_cleanly(self, mf_data, cluster):
        program = _program(mf_data, cluster)
        runner = MultiprocessRunner(program.train_loop)
        try:
            runner.run_epoch()
            # Kill one worker process out from under the runner.
            victim = runner._processes[1]
            victim.terminate()
            victim.join(timeout=5)
            with pytest.raises(ExecutionError, match="died"):
                # One epoch is enough to hit the dead pipe.
                for _ in range(3):
                    runner.run_epoch()
        finally:
            runner.close()

    def test_close_after_crash_does_not_hang(self, mf_data, cluster):
        program = _program(mf_data, cluster)
        runner = MultiprocessRunner(program.train_loop)
        runner.run_epoch()
        for process in runner._processes:
            process.terminate()
            process.join(timeout=5)
        runner.close()  # must not raise or hang


class TestCheckpointRecovery:
    def test_crash_restore_resume(self, mf_data, cluster, tmp_path):
        program = _program(mf_data, cluster)
        factors = [program.arrays["W"], program.arrays["H"]]
        policy = CheckpointPolicy(factors, str(tmp_path), every_n_epochs=1)

        runner = MultiprocessRunner(program.train_loop)
        losses = []
        try:
            for epoch in range(1, 4):
                runner.run_epoch()
                losses.append(program.loss_fn())
                policy.step(epoch)
            checkpoint_loss = losses[-1]
            # Crash.
            runner._processes[0].terminate()
            runner._processes[0].join(timeout=5)
            with pytest.raises(ExecutionError):
                for _ in range(3):
                    runner.run_epoch()
        finally:
            runner.close()

        # Recovery: restore the last checkpoint, restart workers, resume.
        tag = policy.restore_latest()
        assert tag == "epoch3"
        assert program.loss_fn() == pytest.approx(checkpoint_loss)
        with MultiprocessRunner(program.train_loop) as fresh:
            fresh.run_epoch()
        assert program.loss_fn() < checkpoint_loss

    def test_restore_without_checkpoint_is_explicit(self, mf_data, cluster, tmp_path):
        program = _program(mf_data, cluster)
        policy = CheckpointPolicy(
            [program.arrays["W"]], str(tmp_path), every_n_epochs=5
        )
        with pytest.raises(CheckpointError):
            policy.restore_latest()
