"""Tests for synthetic dataset generators and text loaders (repro.data)."""

import numpy as np
import pytest

from repro.core.distarray import DistArray
from repro.data import (
    lda_corpus,
    netflix_like,
    parse_libsvm_line,
    parse_ratings_line,
    regression_table,
    sparse_classification,
    write_libsvm_file,
    write_ratings_file,
)
from repro.data.loader import parse_json_line, write_json_lines
from repro.errors import MaterializationError


class TestNetflixLike:
    def test_requested_count(self):
        data = netflix_like(num_rows=50, num_cols=40, num_ratings=500, seed=0)
        assert data.num_entries == 500

    def test_coordinates_in_bounds(self):
        data = netflix_like(num_rows=30, num_cols=20, num_ratings=200, seed=1)
        for (i, j), _v in data.entries:
            assert 0 <= i < 30
            assert 0 <= j < 20

    def test_no_duplicate_positions(self):
        data = netflix_like(num_rows=30, num_cols=20, num_ratings=300, seed=2)
        keys = [key for key, _v in data.entries]
        assert len(keys) == len(set(keys))

    def test_low_rank_structure_learnable(self):
        # Ratings must carry low-rank signal: variance of values far
        # exceeds the injected noise.
        data = netflix_like(
            num_rows=60, num_cols=50, num_ratings=1000, noise=0.01, seed=3
        )
        values = np.array([v for _k, v in data.entries])
        assert values.std() > 0.1

    def test_seed_determinism(self):
        a = netflix_like(num_ratings=100, seed=7)
        b = netflix_like(num_ratings=100, seed=7)
        assert a.entries == b.entries

    def test_skew_concentrates_rows(self):
        uniform = netflix_like(num_rows=100, num_ratings=2000, skew=0.0, seed=4)
        skewed = netflix_like(num_rows=100, num_ratings=2000, skew=1.5, seed=4)

        def top_row_share(data):
            counts = np.zeros(100)
            for (i, _j), _v in data.entries:
                counts[i] += 1
            return counts.max() / len(data.entries)

        assert top_row_share(skewed) > 2 * top_row_share(uniform)


class TestLdaCorpus:
    def test_entry_counts_sum_to_tokens(self, corpus_small):
        total = sum(count for _key, count in corpus_small.entries)
        assert total == corpus_small.total_tokens

    def test_coordinates_in_bounds(self, corpus_small):
        for (doc, word), _count in corpus_small.entries:
            assert 0 <= doc < corpus_small.num_docs
            assert 0 <= word < corpus_small.vocab_size

    def test_truth_distributions_normalized(self, corpus_small):
        topic_word = corpus_small.truth["topic_word"]
        assert np.allclose(topic_word.sum(axis=1), 1.0)

    def test_zipf_vocabulary_skew(self):
        corpus = lda_corpus(
            num_docs=100, vocab_size=200, doc_length=50, zipf_exponent=1.3, seed=5
        )
        counts = np.zeros(200)
        for (_doc, word), count in corpus.entries:
            counts[word] += count
        top_share = np.sort(counts)[::-1][:20].sum() / counts.sum()
        assert top_share > 0.4  # head-heavy vocabulary


class TestSparseClassification:
    def test_shapes(self, slr_small):
        assert slr_small.num_samples == len(slr_small.entries)

    def test_labels_binary(self, slr_small):
        labels = {label for _k, (_f, label) in slr_small.entries}
        assert labels <= {0, 1}

    def test_features_sorted_unique(self, slr_small):
        for _key, (features, _label) in slr_small.entries:
            ids = [fid for fid, _v in features]
            assert ids == sorted(set(ids))

    def test_labels_correlate_with_truth(self, slr_small):
        # The generative weights must actually predict the labels (so SLR
        # training has signal to find).
        weights = slr_small.truth["weights"]
        correct = 0
        for _key, (features, label) in slr_small.entries:
            margin = sum(weights[fid] * fval for fid, fval in features)
            correct += int((margin > 0) == (label == 1))
        assert correct / len(slr_small.entries) > 0.6


class TestRegressionTable:
    def test_shapes(self, table_small):
        assert table_small.features.shape == (
            table_small.num_samples,
            table_small.num_features,
        )
        assert len(table_small.entries) == table_small.num_samples

    def test_signal_dominates_noise(self, table_small):
        assert table_small.targets.std() > 0.3


class TestLoaders:
    def test_ratings_roundtrip(self, tmp_path, mf_small):
        path = str(tmp_path / "r.txt")
        count = write_ratings_file(path, mf_small.entries[:50])
        assert count == 50
        array = DistArray.text_file(path, parse_ratings_line).materialize()
        assert array.num_entries == 50
        key, value = mf_small.entries[0]
        assert array[key] == pytest.approx(value)

    def test_libsvm_roundtrip(self, tmp_path, slr_small):
        path = str(tmp_path / "s.txt")
        write_libsvm_file(path, slr_small.entries[:20])
        array = DistArray.text_file(
            path, parse_libsvm_line, shape=slr_small.shape
        ).materialize()
        key, (features, label) = slr_small.entries[3]
        loaded_features, loaded_label = array[key]
        assert loaded_label == label
        assert loaded_features == [(f, pytest.approx(v)) for f, v in features]

    def test_json_roundtrip(self, tmp_path):
        path = str(tmp_path / "j.txt")
        entries = [((1, 2), [1.0, 2.0]), ((0, 0), "txt")]
        write_json_lines(path, entries)
        array = DistArray.text_file(path, parse_json_line).materialize()
        assert array[(1, 2)] == [1.0, 2.0]
        assert array[(0, 0)] == "txt"

    def test_bad_lines_raise(self):
        with pytest.raises(MaterializationError):
            parse_ratings_line("1 2")
        with pytest.raises(MaterializationError):
            parse_libsvm_line("1")
        with pytest.raises(MaterializationError):
            parse_json_line("{not json")
