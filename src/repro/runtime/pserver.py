"""Parameter-server placement: random access, bulk prefetch, write flush.

DistArrays that cannot be localized by partitioning (data-dependent
subscripts, buffered dense updates) are served by parameter-server
processes (paper Sec. 4.4).  Without prefetching, every element read is a
network round trip; Orion synthesizes a prefetch function
(:mod:`repro.analysis.prefetch`) that lists the indices a block will read
so they can be fetched in one bulk request.  The prefetch *indices* can
additionally be cached per block, amortizing the synthesized function's
execution cost across epochs (the paper's 9.2 s → 6.3 s step).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.analysis.prefetch import PrefetchFunction
from repro.core.distarray import DistArray
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.runtime.cluster import ClusterSpec

__all__ = ["index_nbytes", "BlockAccessCost", "PrefetchManager"]


def index_nbytes(array: DistArray, index: Tuple[Any, ...]) -> int:
    """Payload bytes of one recorded read index against ``array``.

    Point indices cost one element; slice positions multiply by the span
    they cover (a whole column read of a K-row matrix costs 8·K bytes).
    """
    if not isinstance(index, tuple):
        index = (index,)
    elements = 1
    for position, item in enumerate(index):
        if isinstance(item, slice):
            try:
                extent = array.shape[position]
            except Exception:
                extent = 1
            lo = item.start if item.start is not None else 0
            hi = item.stop if item.stop is not None else extent
            elements *= max(1, hi - lo)
    return 8 * elements


def _canonical(index: Any) -> Tuple[Any, ...]:
    if not isinstance(index, tuple):
        index = (index,)
    out = []
    for item in index:
        if isinstance(item, slice):
            out.append(("slice", item.start, item.stop))
        else:
            out.append(int(item))
    return tuple(out)


@dataclass
class BlockAccessCost:
    """Server-array access cost of one block in one epoch."""

    seconds: float
    nbytes: float
    num_requests: int


class PrefetchManager:
    """Per-loop manager turning recorded indices into access costs.

    Args:
        cluster: provides the network model.
        arrays: name -> DistArray for server-placed arrays.
        prefetch_fn: the synthesized prefetch function, or ``None`` to model
            per-access random reads.
        cache_indices: reuse each block's unique index set across epochs,
            skipping the prefetch function's re-execution cost.
        prefetch_cpu_fraction: CPU cost of running the synthesized function,
            as a fraction of the block's compute cost (it executes a slice
            of the loop body).
        metrics: observability registry; counts prefetch index-cache hits
            and misses (``prefetch_cache_hits_total`` /
            ``prefetch_cache_misses_total``).
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        arrays: Dict[str, DistArray],
        prefetch_fn: Optional[PrefetchFunction],
        cache_indices: bool = False,
        prefetch_cpu_fraction: float = 0.3,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.cluster = cluster
        self.arrays = arrays
        self.prefetch_fn = prefetch_fn
        self.cache_indices = cache_indices
        self.prefetch_cpu_fraction = prefetch_cpu_fraction
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._cache: Dict[Any, Tuple[int, float]] = {}

    def block_read_cost(
        self,
        block_key: Any,
        entries: Sequence[Tuple[Tuple[int, ...], Any]],
        link: Optional[Any] = None,
    ) -> BlockAccessCost:
        """Cost of serving one block's server-array reads.

        With a prefetch function: one bulk request of the block's unique
        indices plus the function's CPU cost (zero on cache hits).  Without
        a prefetch function the executor measures per-read counts and uses
        :meth:`random_access_cost_from_counts` instead.

        ``link`` optionally routes the bulk request through an unreliable
        :class:`~repro.faults.link.FaultyLink`: dropped requests pay the
        retry/backoff penalty and each resend counts as another request
        (per-message CPU included).
        """
        if not self.arrays or self.prefetch_fn is None:
            return BlockAccessCost(0.0, 0.0, 0)
        cached = self._cache.get(block_key) if self.cache_indices else None
        if cached is not None:
            self.metrics.counter("prefetch_cache_hits_total").inc()
            unique_count, nbytes = cached
            cpu = 0.0
        else:
            self.metrics.counter("prefetch_cache_misses_total").inc()
            unique: Dict[Tuple[str, Tuple[Any, ...]], int] = {}
            for key, value in entries:
                for array_name, index in self.prefetch_fn(key, value):
                    if array_name not in self.arrays:
                        continue
                    signature = (array_name, _canonical(index))
                    if signature not in unique:
                        unique[signature] = index_nbytes(
                            self.arrays[array_name], index
                        )
            unique_count = len(unique)
            nbytes = float(sum(unique.values()))
            cpu = self.cluster.cost.compute_time(len(entries)) \
                * self.prefetch_cpu_fraction
            if self.cache_indices:
                self._cache[block_key] = (unique_count, nbytes)
        transfer = 0.0
        num_requests = 1 if unique_count else 0
        if nbytes:
            if link is not None:
                outcome = link.transfer(
                    nbytes, key=("prefetch",) + tuple(block_key)
                )
                transfer = outcome.seconds
                num_requests = outcome.attempts
            else:
                transfer = self.cluster.network.transfer_time(nbytes)
        return BlockAccessCost(
            seconds=cpu + transfer,
            nbytes=nbytes,
            num_requests=num_requests,
        )

    def random_access_cost_from_counts(
        self, num_reads: int, nbytes: float
    ) -> BlockAccessCost:
        """Random-access cost given measured per-block read counts (the
        no-prefetch case: every read pays a full round trip)."""
        return BlockAccessCost(
            seconds=self.cluster.network.random_access_time(num_reads, nbytes),
            nbytes=nbytes,
            num_requests=num_reads,
        )
