"""Computation schedules and their virtual-time models (paper Fig. 7/8).

Three schedules, matching the paper's Fig. 7d/e/f:

* **1D** — every worker executes its partition once; one barrier.
* **Ordered 2D (wavefront)** — global time steps ``ts``; worker ``j``
  executes block ``(space=j, time=ts-j)`` when valid; a barrier separates
  steps so the lexicographic order of dependent blocks is preserved.
* **Unordered 2D (rotation)** — workers start at different time indices
  and rotate: at step ``s``, worker ``j`` executes time index
  ``(j·d + s) mod T`` where ``T = d·W`` and ``d`` is the pipeline depth
  (multiple time indices per worker, paper Fig. 8).  A worker waits only
  for its successor's block from ``d`` steps earlier, not for a global
  barrier — the pipelining that hides rotation latency.

The timing functions take a ``work_s[space, time]`` matrix of virtual
seconds per block (compute + prefetch + flush, built by the executor) and
return the schedule's makespan together with per-task finish times, which
the executor uses to place traffic events on the virtual timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExecutionError
from repro.runtime.cluster import ClusterSpec

#: Pluggable transfer cost: ``fn(nbytes, intra_machine=..., key=...)`` —
#: the ``key`` tuple names the message so an unreliable link (fault
#: injection) can resolve per-message drops deterministically.
TransferFn = Callable[..., float]


def _default_transfer(cluster: ClusterSpec) -> TransferFn:
    """The loss-free cost: the cluster's network model, key ignored."""

    def transfer(nbytes: float, intra_machine: bool = False, key=()) -> float:
        return cluster.network.transfer_time(nbytes, intra_machine)

    return transfer


__all__ = [
    "Task",
    "ScheduleTiming",
    "one_d_schedule",
    "ordered_2d_schedule",
    "unordered_2d_schedule",
    "sequential_outer_schedule",
    "time_one_d",
    "time_ordered_2d",
    "time_unordered_2d",
    "time_sequential_outer",
    "scan_unordered_depths",
]


@dataclass(frozen=True)
class Task:
    """One unit of scheduled work: a worker executing one block at a step."""

    worker: int
    step: int
    space_idx: int
    time_idx: Optional[int]


@dataclass
class ScheduleTiming:
    """Virtual-time outcome of one scheduled epoch."""

    makespan: float
    #: Finish time of each task, keyed by ``(worker, step)``.
    finish: Dict[Tuple[int, int], float] = field(default_factory=dict)
    #: Global synchronization intervals ``(t_start, t_end)`` — the barrier
    #: waits the schedule charges, for tracing (``barrier`` spans).
    barriers: List[Tuple[float, float]] = field(default_factory=list)


def one_d_schedule(num_workers: int) -> List[List[Task]]:
    """Paper Fig. 7d: one parallel step, worker ``j`` runs partition ``j``."""
    return [[Task(worker=j, step=0, space_idx=j, time_idx=0)
             for j in range(num_workers)]]


def ordered_2d_schedule(num_workers: int, num_time: int) -> List[List[Task]]:
    """Paper Fig. 7e: wavefront over ``num_time + num_workers - 1`` steps."""
    steps: List[List[Task]] = []
    for global_step in range(num_time + num_workers - 1):
        tasks = []
        for worker in range(num_workers):
            time_idx = global_step - worker
            if 0 <= time_idx < num_time:
                tasks.append(
                    Task(
                        worker=worker,
                        step=global_step,
                        space_idx=worker,
                        time_idx=time_idx,
                    )
                )
        steps.append(tasks)
    return steps


def unordered_2d_schedule(num_workers: int, num_time: int) -> List[List[Task]]:
    """Paper Fig. 7f/Fig. 8: rotation with staggered start indices.

    Requires ``num_time`` to be a multiple of ``num_workers`` (the multiple
    is the pipeline depth).  Every worker touches every time index exactly
    once over ``num_time`` steps, and within a step all workers hold
    distinct time indices.
    """
    if num_time % num_workers != 0:
        raise ExecutionError(
            f"unordered 2D needs num_time ({num_time}) divisible by "
            f"num_workers ({num_workers})"
        )
    depth = num_time // num_workers
    steps = []
    for step in range(num_time):
        steps.append(
            [
                Task(
                    worker=worker,
                    step=step,
                    space_idx=worker,
                    time_idx=(worker * depth + step) % num_time,
                )
                for worker in range(num_workers)
            ]
        )
    return steps


def sequential_outer_schedule(
    num_workers: int, num_time: int
) -> List[List[Task]]:
    """Unimodular plans: the transformed outer level carries every
    dependence, so its blocks run strictly one after another while the
    inner (space) blocks of each outer index run in parallel."""
    steps = []
    for time_idx in range(num_time):
        steps.append(
            [
                Task(worker=j, step=time_idx, space_idx=j, time_idx=time_idx)
                for j in range(num_workers)
            ]
        )
    return steps


def time_one_d(work_s: np.ndarray, cluster: ClusterSpec) -> ScheduleTiming:
    """Makespan of the 1D schedule: slowest worker plus one barrier."""
    finish: Dict[Tuple[int, int], float] = {}
    for worker in range(work_s.shape[0]):
        finish[(worker, 0)] = float(work_s[worker].sum())
    slowest = max(finish.values())
    makespan = slowest + cluster.cost.sync_overhead_s
    return ScheduleTiming(
        makespan=makespan, finish=finish, barriers=[(slowest, makespan)]
    )


def time_ordered_2d(
    work_s: np.ndarray,
    cluster: ClusterSpec,
    rotated_block_bytes: float,
    transfer_time: Optional[TransferFn] = None,
) -> ScheduleTiming:
    """Makespan of the wavefront schedule (global barrier per step).

    Each step costs the slowest active block, plus the rotated-partition
    transfer to the next worker, plus the barrier.  ``transfer_time``
    optionally replaces the cluster's loss-free cost (fault injection:
    a dropped rotation message delays the whole step's barrier).
    """
    num_workers, num_time = work_s.shape
    if transfer_time is None:
        transfer_time = _default_transfer(cluster)
    clock = 0.0
    finish: Dict[Tuple[int, int], float] = {}
    barriers: List[Tuple[float, float]] = []
    for tasks in ordered_2d_schedule(num_workers, num_time):
        if not tasks:
            continue
        step_work = 0.0
        step = tasks[0].step
        for task in tasks:
            duration = float(work_s[task.space_idx, task.time_idx])
            finish[(task.worker, task.step)] = clock + duration
            step_work = max(step_work, duration)
        transfer = transfer_time(
            rotated_block_bytes, key=("rotation", step)
        )
        barrier_start = clock + step_work + transfer
        clock += step_work + transfer + cluster.cost.sync_overhead_s
        barriers.append((min(barrier_start, clock), clock))
    return ScheduleTiming(makespan=clock, finish=finish, barriers=barriers)


def time_unordered_2d(
    work_s: np.ndarray,
    cluster: ClusterSpec,
    rotated_block_bytes: float,
    depth: Optional[int] = None,
    transfer_time: Optional[TransferFn] = None,
) -> ScheduleTiming:
    """Makespan of the pipelined rotation schedule (paper Fig. 8).

    ``finish[j][s] = max(finish[j][s-1], arrival[j][s]) + work``, where the
    block executed by worker ``j`` at step ``s >= depth`` arrives from the
    successor worker ``j+1`` which finished with it at step ``s - depth``,
    plus one transfer.  With depth > 1 the transfer overlaps the worker's
    other locally available block — the paper's idle-time elimination.
    ``transfer_time`` optionally replaces the loss-free network cost; its
    ``key`` names the message (sender, send step) so fault injection can
    drop individual rotation hops deterministically.
    """
    num_workers, num_time = work_s.shape
    if depth is None:
        if num_time % num_workers != 0:
            raise ExecutionError("num_time must be a multiple of num_workers")
        depth = num_time // num_workers
    if transfer_time is None:
        transfer_time = _default_transfer(cluster)
    finish_matrix = np.zeros((num_workers, num_time))
    finish: Dict[Tuple[int, int], float] = {}
    for step in range(num_time):
        for worker in range(num_workers):
            time_idx = (worker * depth + step) % num_time
            ready = finish_matrix[worker, step - 1] if step > 0 else 0.0
            if step >= depth:
                successor = (worker + 1) % num_workers
                transfer = transfer_time(
                    rotated_block_bytes,
                    intra_machine=cluster.same_machine(worker, successor),
                    key=("rotation", successor, step - depth),
                )
                arrival = finish_matrix[successor, step - depth] + transfer
                ready = max(ready, arrival)
            finish_matrix[worker, step] = ready + float(work_s[worker, time_idx])
            finish[(worker, step)] = float(finish_matrix[worker, step])
    slowest = float(finish_matrix[:, num_time - 1].max())
    makespan = slowest + cluster.cost.sync_overhead_s
    return ScheduleTiming(
        makespan=makespan, finish=finish, barriers=[(slowest, makespan)]
    )


def scan_unordered_depths(
    tileable_s: Sequence[float],
    per_block_s: Sequence[float],
    cluster: ClusterSpec,
    rotated_bytes_total: float,
    depths: Sequence[int],
) -> Dict[int, float]:
    """Predicted unordered-2D makespan per candidate pipeline depth.

    The adaptive tuner's what-if engine: it feeds one *measured* epoch's
    per-worker busy time back through the very timing model the simulator
    charges (:func:`time_unordered_2d`), re-tiled at each candidate depth.

    Args:
        tileable_s: per-worker seconds that re-tile with the blocks —
            compute + prefetch + flush + marshalling (marshalling totals
            are depth-invariant: finer blocks are proportionally smaller).
        per_block_s: per-worker seconds charged once per *block*
            regardless of its size (message-setup CPU) — the cost that
            grows linearly with the block count and makes deep pipelines
            eventually lose.
        cluster: supplies the network model and barrier cost.
        rotated_bytes_total: total rotated-array bytes; one block's
            transfer is this divided by the depth's ``num_time``.
        depths: candidate pipeline depths to score.

    Returns ``{depth: predicted makespan seconds}`` — deterministic, so
    the tuner's decisions are reproducible from the same traces.
    """
    num_workers = len(tileable_s)
    out: Dict[int, float] = {}
    for depth in depths:
        num_time = depth * num_workers
        work = np.empty((num_workers, num_time))
        for worker in range(num_workers):
            work[worker, :] = (
                tileable_s[worker] / num_time + per_block_s[worker]
            )
        timing = time_unordered_2d(
            work, cluster, rotated_bytes_total / num_time, depth=depth
        )
        out[int(depth)] = timing.makespan
    return out


def time_sequential_outer(
    work_s: np.ndarray, cluster: ClusterSpec
) -> ScheduleTiming:
    """Makespan of the sequential-outer schedule (unimodular plans):
    sum over outer indices of the slowest inner block, barrier each."""
    num_workers, num_time = work_s.shape
    clock = 0.0
    finish: Dict[Tuple[int, int], float] = {}
    barriers: List[Tuple[float, float]] = []
    for time_idx in range(num_time):
        step_work = 0.0
        for worker in range(num_workers):
            duration = float(work_s[worker, time_idx])
            finish[(worker, time_idx)] = clock + duration
            step_work = max(step_work, duration)
        barrier_start = clock + step_work
        clock += step_work + cluster.cost.sync_overhead_s
        barriers.append((min(barrier_start, clock), clock))
    return ScheduleTiming(makespan=clock, finish=finish, barriers=barriers)
