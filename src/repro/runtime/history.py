"""Run histories: the measurements every engine reports.

A :class:`RunHistory` is the common output format of the Orion executor and
all baseline engines — per-epoch loss, cumulative virtual time, and traffic
— from which each benchmark prints its paper-figure rows.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.runtime.network import TrafficLog

__all__ = ["EpochRecord", "RunHistory"]


@dataclass(frozen=True)
class EpochRecord:
    """Measurements for one data pass.

    Attributes:
        epoch: 1-based data-pass number.
        loss: objective value measured after the pass.
        time_s: cumulative virtual seconds at the end of the pass.
        epoch_time_s: virtual seconds this pass took.
        bytes_sent: network bytes this pass generated.
        utilization: fraction of worker-seconds spent on block work this
            pass (0.0 when the engine does not report it).
    """

    epoch: int
    loss: float
    time_s: float
    epoch_time_s: float
    bytes_sent: float = 0.0
    utilization: float = 0.0


@dataclass
class RunHistory:
    """A labelled sequence of per-epoch records plus traffic details."""

    label: str
    records: List[EpochRecord] = field(default_factory=list)
    traffic: TrafficLog = field(default_factory=TrafficLog)
    meta: Dict[str, Any] = field(default_factory=dict)

    def append(
        self,
        loss: float,
        epoch_time_s: float,
        bytes_sent: float = 0.0,
        utilization: float = 0.0,
    ) -> EpochRecord:
        """Append the next epoch's measurements."""
        epoch = len(self.records) + 1
        previous = self.records[-1].time_s if self.records else 0.0
        record = EpochRecord(
            epoch=epoch,
            loss=float(loss),
            time_s=previous + float(epoch_time_s),
            epoch_time_s=float(epoch_time_s),
            bytes_sent=float(bytes_sent),
            utilization=float(utilization),
        )
        self.records.append(record)
        return record

    @property
    def losses(self) -> List[float]:
        """Loss after each data pass."""
        return [record.loss for record in self.records]

    @property
    def times(self) -> List[float]:
        """Cumulative virtual time after each data pass."""
        return [record.time_s for record in self.records]

    @property
    def final_loss(self) -> float:
        """Loss after the last pass (raises on an empty history)."""
        return self.records[-1].loss

    @property
    def total_time_s(self) -> float:
        """Total virtual time of the run."""
        return self.records[-1].time_s if self.records else 0.0

    def time_per_iteration(self, skip_first: int = 1) -> float:
        """Mean epoch time, skipping warm-up passes like the paper
        (Fig. 9a averages iterations 2 to 8)."""
        tail = self.records[skip_first:] or self.records
        return sum(record.epoch_time_s for record in tail) / len(tail)

    def epochs_to_reach(self, loss_target: float) -> Optional[int]:
        """First epoch at which the loss is at or below ``loss_target``."""
        for record in self.records:
            if record.loss <= loss_target:
                return record.epoch
        return None

    def time_to_reach(self, loss_target: float) -> Optional[float]:
        """Virtual time at which the loss first reaches ``loss_target``."""
        for record in self.records:
            if record.loss <= loss_target:
                return record.time_s
        return None

    # ---------------- JSON round-trip ---------------------------------- #

    def to_json(self) -> Dict[str, Any]:
        """The history as one JSON-safe dict (records + traffic + meta).

        Meta entries that are not JSON-serializable as-is (numpy state
        dicts, hyperparameter dataclasses, live tracer objects, ...) are
        dropped, so benchmark results stay machine-readable without
        pickling.  Round-trips through :meth:`from_json`.
        """
        meta: Dict[str, Any] = {}
        for key, value in self.meta.items():
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                continue
            meta[key] = value
        return {
            "label": self.label,
            "records": [asdict(record) for record in self.records],
            "traffic": self.traffic.to_json(),
            "meta": meta,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "RunHistory":
        """Rebuild a history from :meth:`to_json` output."""
        history = cls(
            label=str(data["label"]),
            traffic=TrafficLog.from_json(data.get("traffic", [])),
            meta=dict(data.get("meta", {})),
        )
        for item in data.get("records", []):
            history.records.append(EpochRecord(**item))
        return history
