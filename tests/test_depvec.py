"""Unit tests for dependence vectors and Alg. 2 (repro.analysis.depvec)."""

import pytest

from repro.analysis import subscript as sub
from repro.analysis.depvec import (
    ANY,
    NEG,
    POS,
    ArrayRef,
    DepVector,
    compute_dependence_vectors,
    entry_add,
    entry_is_exact,
    entry_is_positive,
    entry_is_zero,
    entry_mul,
    entry_negate,
)


class TestEntryArithmetic:
    def test_exact_predicates(self):
        assert entry_is_exact(3)
        assert not entry_is_exact(ANY)
        assert entry_is_zero(0)
        assert not entry_is_zero(ANY)
        assert entry_is_positive(2)
        assert entry_is_positive(POS)
        assert not entry_is_positive(ANY)
        assert not entry_is_positive(0)
        assert not entry_is_positive(NEG)

    def test_negate(self):
        assert entry_negate(3) == -3
        assert entry_negate(ANY) is ANY
        assert entry_negate(POS) is NEG
        assert entry_negate(NEG) is POS

    def test_mul_zero_coefficient_annihilates(self):
        assert entry_mul(0, ANY) == 0
        assert entry_mul(0, POS) == 0
        assert entry_mul(0, 7) == 0

    def test_mul_sign_handling(self):
        assert entry_mul(2, 3) == 6
        assert entry_mul(-1, POS) is NEG
        assert entry_mul(3, NEG) is NEG
        assert entry_mul(-2, NEG) is POS
        assert entry_mul(5, ANY) is ANY

    def test_add_exact(self):
        assert entry_add(2, 3) == 5

    def test_add_any_absorbs(self):
        assert entry_add(ANY, 5) is ANY
        assert entry_add(POS, ANY) is ANY

    def test_add_pos_nonneg_stays_pos(self):
        assert entry_add(POS, 0) is POS
        assert entry_add(POS, 3) is POS
        assert entry_add(POS, POS) is POS

    def test_add_pos_negative_widens(self):
        assert entry_add(POS, -1) is ANY
        assert entry_add(POS, NEG) is ANY

    def test_add_neg_mirror(self):
        assert entry_add(NEG, -2) is NEG
        assert entry_add(NEG, 0) is NEG
        assert entry_add(NEG, 1) is ANY


class TestLexicoPositive:
    def test_all_zero_dropped(self):
        assert DepVector((0, 0)).lexico_positive() is None

    def test_positive_lead_kept(self):
        vector = DepVector((1, -5))
        assert vector.lexico_positive().entries == (1, -5)

    def test_negative_lead_flipped(self):
        assert DepVector((-1, 2)).lexico_positive().entries == (1, -2)

    def test_zero_then_negative_flipped(self):
        assert DepVector((0, -3)).lexico_positive().entries == (0, 3)

    def test_any_lead_becomes_pos(self):
        corrected = DepVector((ANY, 0)).lexico_positive()
        assert corrected.entries == (POS, 0)

    def test_zero_then_any_becomes_pos(self):
        corrected = DepVector((0, ANY)).lexico_positive()
        assert corrected.entries == (0, POS)

    def test_pos_lead_kept(self):
        vector = DepVector((POS, ANY))
        assert vector.lexico_positive().entries == (POS, ANY)

    def test_any_lead_full_cover(self):
        # (ANY, ANY) admits distances with a strictly positive lead AND
        # zero-lead distances with a positive tail; both must be kept.
        cover = {v.entries for v in DepVector((ANY, ANY)).lexico_positive_set()}
        assert cover == {(POS, ANY), (0, POS)}

    def test_negative_exact_lead_cover(self):
        cover = {v.entries for v in DepVector((-2, ANY)).lexico_positive_set()}
        assert cover == {(2, ANY)}

    def test_neg_lead_flipped(self):
        assert DepVector((NEG, 1)).lexico_positive().entries == (POS, -1)

    def test_trailing_any_preserved(self):
        corrected = DepVector((ANY, ANY)).lexico_positive()
        assert corrected.entries == (POS, ANY)


class TestTransform:
    def test_identity(self):
        vector = DepVector((1, ANY))
        out = vector.transform([[1, 0], [0, 1]])
        assert out.entries == (1, ANY)

    def test_skew_wavefront(self):
        # T = [[1,1],[0,1]] maps (1,0)->(1,0) and (0,1)->(1,1).
        skew = [[1, 1], [0, 1]]
        assert DepVector((1, 0)).transform(skew).entries == (1, 0)
        assert DepVector((0, 1)).transform(skew).entries == (1, 1)

    def test_transform_pos_entries(self):
        skew = [[1, 1], [0, 1]]
        out = DepVector((POS, 0)).transform(skew)
        assert out.entries == (POS, 0)

    def test_transform_shape_mismatch_raises(self):
        from repro.errors import DependenceError

        with pytest.raises(DependenceError):
            DepVector((1, 0)).transform([[1, 0, 0], [0, 1, 0], [0, 0, 1]])

    def test_describe(self):
        assert DepVector((0, ANY, POS, NEG, 2)).describe() == \
            "(0, inf, +inf, -inf, 2)"


def _ref(axes, write, buffered=False):
    return ArrayRef(array_name="A", axes=tuple(axes), is_write=write,
                    buffered=buffered)


class TestAlgorithm2:
    """Dependence-vector computation for the paper's reference patterns."""

    def test_mf_pattern(self):
        # W[:, key[0]] read + write over a 2-D iteration space -> (0, inf).
        refs = [
            _ref([sub.slice_all(), sub.index(0)], write=False),
            _ref([sub.slice_all(), sub.index(0)], write=True),
        ]
        dvecs = compute_dependence_vectors(refs, 2, unordered_loop=True)
        assert {v.entries for v in dvecs} == {(0, POS)}

    def test_mf_pattern_second_factor(self):
        refs = [
            _ref([sub.slice_all(), sub.index(1)], write=False),
            _ref([sub.slice_all(), sub.index(1)], write=True),
        ]
        dvecs = compute_dependence_vectors(refs, 2, unordered_loop=True)
        assert {v.entries for v in dvecs} == {(POS, 0)}

    def test_read_read_skipped(self):
        refs = [
            _ref([sub.index(0)], write=False),
            _ref([sub.index(0)], write=False),
        ]
        assert not compute_dependence_vectors(refs, 1)

    def test_write_write_skipped_when_unordered(self):
        refs = [_ref([sub.index(0)], write=True)]
        assert not compute_dependence_vectors(refs, 2, unordered_loop=True)

    def test_write_write_kept_when_ordered(self):
        refs = [_ref([sub.index(0)], write=True)]
        dvecs = compute_dependence_vectors(refs, 2, unordered_loop=False)
        assert {v.entries for v in dvecs} == {(0, POS)}

    def test_shifted_subscripts_give_distance(self):
        # A[key[0]+1] read, A[key[0]] write -> distance 1 along dim 0.
        refs = [
            _ref([sub.index(0, 1)], write=False),
            _ref([sub.index(0, 0)], write=True),
        ]
        dvecs = compute_dependence_vectors(refs, 1)
        assert {v.entries for v in dvecs} == {(1,)}

    def test_negative_distance_normalized(self):
        refs = [
            _ref([sub.index(0, -2)], write=False),
            _ref([sub.index(0, 0)], write=True),
        ]
        dvecs = compute_dependence_vectors(refs, 1)
        assert {v.entries for v in dvecs} == {(2,)}

    def test_conflicting_distances_prove_independence(self):
        # A[key[0], key[0]+1] vs A[key[0], key[0]] needs distance 0 and 1
        # on the same iteration dim at once -> independent.
        refs = [
            _ref([sub.index(0), sub.index(0, 1)], write=False),
            _ref([sub.index(0), sub.index(0)], write=True),
        ]
        assert not compute_dependence_vectors(refs, 1)

    def test_distinct_constant_columns_independent(self):
        refs = [
            _ref([sub.index(0), sub.constant(1)], write=False),
            _ref([sub.index(0), sub.constant(2)], write=True),
        ]
        assert not compute_dependence_vectors(refs, 1)

    def test_same_constant_column_dependent(self):
        refs = [
            _ref([sub.index(0), sub.constant(1)], write=False),
            _ref([sub.index(0), sub.constant(1)], write=True),
        ]
        dvecs = compute_dependence_vectors(refs, 1)
        # Same coordinate requires distance 0 -> self-dependence, dropped.
        assert not dvecs

    def test_unknown_subscript_conservative(self):
        refs = [
            _ref([sub.unknown()], write=False),
            _ref([sub.unknown()], write=True),
        ]
        dvecs = compute_dependence_vectors(refs, 2)
        # The full lexicographically-positive cover of (ANY, ANY).
        assert {v.entries for v in dvecs} == {(POS, ANY), (0, POS)}

    def test_buffered_refs_exempt(self):
        refs = [
            _ref([sub.unknown()], write=True, buffered=True),
            _ref([sub.index(0)], write=False),
        ]
        assert not compute_dependence_vectors(refs, 1)

    def test_lda_pattern(self):
        # doc_topic[key[0], :] read+write plus word_topic[key[1], :]:
        # handled per array; doc side gives (0, inf).
        doc_refs = [
            _ref([sub.index(0), sub.slice_all()], write=False),
            _ref([sub.index(0), sub.slice_all()], write=True),
        ]
        dvecs = compute_dependence_vectors(doc_refs, 2, unordered_loop=True)
        assert {v.entries for v in dvecs} == {(0, POS)}

    def test_whole_key_self_dependence_dropped(self):
        refs = [
            _ref([sub.index(0), sub.index(1)], write=False),
            _ref([sub.index(0), sub.index(1)], write=True),
        ]
        assert not compute_dependence_vectors(refs, 2, unordered_loop=True)

    def test_range_vs_disjoint_range_independent(self):
        refs = [
            _ref([sub.const_range(0, 3), sub.index(0)], write=False),
            _ref([sub.const_range(5, 8), sub.index(0)], write=True),
        ]
        assert not compute_dependence_vectors(refs, 1)

    def test_range_vs_overlapping_range_dependent(self):
        refs = [
            _ref([sub.const_range(0, 6), sub.index(0)], write=False),
            _ref([sub.const_range(5, 8), sub.index(0, 1)], write=True),
        ]
        dvecs = compute_dependence_vectors(refs, 1)
        assert {v.entries for v in dvecs} == {(1,)}

    def test_multiple_arrays_not_mixed(self):
        # compute_dependence_vectors is per-array; caller unions.  Distinct
        # names inside one call are still treated as potentially aliasing —
        # so the contract is: only pass refs of a single array.
        refs = [
            _ref([sub.index(0)], write=True),
            _ref([sub.index(1)], write=False),
        ]
        dvecs = compute_dependence_vectors(refs, 2, unordered_loop=True)
        # read at key[1] vs write at key[0]: constrained on both dims when
        # subscripts match is impossible to refine -> (ANY->POS, ANY) style.
        assert dvecs  # conservative dependence retained
