"""Tests for the MLP application (repro.apps.mlp) — the paper's DNN path."""

import numpy as np
import pytest

from repro.analysis.strategy import PlacementKind, Strategy
from repro.apps.mlp import (
    MLPApp,
    MLPHyper,
    build_orion_program,
    make_blobs,
    mlp_cost_model,
)
from repro.runtime.cluster import ClusterSpec


@pytest.fixture(scope="module")
def blobs():
    return make_blobs(num_samples=240, num_features=5, num_classes=3, seed=7)


@pytest.fixture
def cluster():
    return ClusterSpec(num_machines=2, workers_per_machine=2)


class TestDataGeneration:
    def test_entry_shapes(self, blobs):
        (key,), (x, label) = blobs[0][0], blobs[0][1]
        assert x.shape == (5,)
        assert 0 <= label < 3

    def test_classes_separable_by_truth(self, blobs):
        labels = {label for _k, (_x, label) in blobs}
        assert labels == {0, 1, 2}


class TestOrionProgram:
    def test_dense_access_gives_data_parallelism(self, blobs, cluster):
        program = build_orion_program(blobs, 5, 3, cluster=cluster)
        assert program.plan.strategy is Strategy.DATA_PARALLEL
        assert program.plan.uses_buffers

    def test_all_weights_server_resident(self, blobs, cluster):
        program = build_orion_program(blobs, 5, 3, cluster=cluster)
        kinds = {p.kind for p in program.plan.placements.values()}
        assert kinds == {PlacementKind.SERVER}

    def test_no_preserved_dependences(self, blobs, cluster):
        # Dense reads + buffered writes: nothing left for Alg. 2 to keep.
        program = build_orion_program(blobs, 5, 3, cluster=cluster)
        assert not program.plan.dvecs

    def test_training_converges(self, blobs, cluster):
        program = build_orion_program(
            blobs, 5, 3, cluster=cluster,
            hyper=MLPHyper(step_size=0.05, max_delay=8),
        )
        history = program.run(5)
        assert history.final_loss < 0.2 * history.meta["initial_loss"]

    def test_tighter_delay_bound_more_traffic(self, blobs, cluster):
        tight = build_orion_program(
            blobs, 5, 3, cluster=cluster, hyper=MLPHyper(max_delay=2)
        ).run(2)
        loose = build_orion_program(
            blobs, 5, 3, cluster=cluster, hyper=MLPHyper(max_delay=64)
        ).run(2)
        assert tight.records[-1].bytes_sent > loose.records[-1].bytes_sent

    def test_accumulator_collects_training_loss(self, blobs, cluster):
        program = build_orion_program(blobs, 5, 3, cluster=cluster)
        program.run(1)
        total = program.ctx.get_aggregated_value("train_loss")
        assert total > 0.0


class TestSerialApp:
    def test_serial_training_reaches_high_accuracy(self, blobs):
        app = MLPApp(blobs, 5, 3, MLPHyper(step_size=0.05))
        state = app.init_state(0)
        for _ in range(5):
            for key, value in app.entries():
                app.apply_entry(state, key, value)
        assert app.accuracy(state) > 0.9

    def test_loss_decreases(self, blobs):
        app = MLPApp(blobs, 5, 3)
        state = app.init_state(0)
        before = app.loss(state)
        for key, value in app.entries():
            app.apply_entry(state, key, value)
        assert app.loss(state) < before

    def test_gradients_touch_all_tensors(self, blobs):
        app = MLPApp(blobs, 5, 3)
        state = app.init_state(0)
        snapshot = {k: v.copy() for k, v in state.items()}
        key, value = app.entries()[0]
        app.apply_entry(state, key, value)
        changed = {k for k in state if not np.array_equal(state[k], snapshot[k])}
        assert changed == {"W1", "B1", "W2", "B2"}


class TestCostModel:
    def test_scales_with_hidden_units(self):
        small = mlp_cost_model(MLPHyper(hidden_units=8), num_features=6)
        big = mlp_cost_model(MLPHyper(hidden_units=64), num_features=6)
        assert big.entry_cost_s > small.entry_cost_s
