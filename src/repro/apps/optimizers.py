"""Adaptive gradient optimizers (paper Sec. 3.3 refs [15, 34, 44]).

The paper's applications use SGD, AdaGrad [15] and Adaptive Revision [34]
(McMahan & Streeter's delay-tolerant AdaGrad).  Orion's DistArray Buffer
UDF — an atomic element-wise read-modify-write — is exactly the hook these
optimizers need; the serializable (dependence-preserving) execution path
applies them directly in the loop body.

Adaptive Revision, briefly: a worker computes gradient ``g`` against
parameter values that may be stale.  Let ``g_bck`` be the sum of updates
applied to the parameter between when the worker read it and when its
update arrives.  AdaRevision keeps ``z`` (sum of applied gradients) so
``g_bck = z_now - z_read``, scales the learning rate by the accumulated
squared gradients *corrected* with ``2·g·g_bck``, and revises the step.
Under serializable execution ``g_bck = 0`` and AdaRevision reduces to
AdaGrad — which is exactly why dependence-preserving parallelization keeps
its convergence identical to serial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["AdaGrad", "AdaRevision", "sgd_step"]


def sgd_step(param: np.ndarray, grad: np.ndarray, step_size: float) -> np.ndarray:
    """Plain SGD: ``param - step_size * grad`` (returned, not in place)."""
    return param - step_size * grad


@dataclass
class AdaGrad:
    """Per-coordinate AdaGrad over vector slices.

    The caller owns the accumulator array (one per parameter tensor) and
    passes the relevant slice; :meth:`step` updates it in place and returns
    the parameter delta.
    """

    step_size: float = 0.1
    epsilon: float = 1e-8

    def step(self, accumulator: np.ndarray, grad: np.ndarray) -> np.ndarray:
        """Update the squared-gradient accumulator, return the update."""
        accumulator += grad * grad
        return -self.step_size * grad / np.sqrt(accumulator + self.epsilon)


@dataclass
class AdaRevision:
    """Adaptive Revision (McMahan & Streeter, NIPS 2014), vectorized.

    State per parameter tensor (caller-owned arrays):

    * ``z``  — sum of all gradients applied so far,
    * ``z2`` — the adapted squared-gradient accumulator.

    :meth:`step` takes the fresh gradient plus the value of ``z`` at the
    time the gradient's input parameters were read (``z_read``) and applies
    the delay correction.  With ``z_read == z`` (no staleness) the update
    is plain AdaGrad.
    """

    step_size: float = 0.1
    epsilon: float = 1e-8

    def step(
        self,
        z: np.ndarray,
        z2: np.ndarray,
        grad: np.ndarray,
        z_read: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Apply one AdaRevision update in place; return the param delta."""
        if z_read is None:
            g_bck = 0.0
        else:
            g_bck = z - z_read
        correction = 2.0 * grad * g_bck
        z2 += np.maximum(grad * grad + correction, 0.0)
        z += grad
        return -self.step_size * grad / np.sqrt(z2 + self.epsilon)
