"""TensorFlow-style mini-batch dataflow SGD (paper Sec. 6.4, Fig. 13).

The paper's TensorFlow SGD MF builds a dataflow graph processing one
mini-batch of matrix entries per step with dense tensor operators: model
parameters update only once per mini-batch (so within a batch every entry
sees stale values), dense operators do redundant work on sparse data, and
small batches under-utilize the cores while huge batches run out of
memory.  The engine reproduces each of those behaviours:

* semantics: touch-count-normalized batch gradient applied once per batch;
* cost: per-batch op-launch overhead plus per-entry compute inflated by a
  dense-redundancy factor and deflated by a utilization curve;
* an out-of-memory guard at a configurable batch size.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.apps.sgd_mf import SGDMFApp
from repro.runtime.cluster import ClusterSpec
from repro.runtime.history import RunHistory
from repro.errors import ExecutionError

__all__ = ["run_tensorflow_minibatch"]


def run_tensorflow_minibatch(
    app: SGDMFApp,
    cluster: ClusterSpec,
    epochs: int,
    batch_size: int,
    seed: int = 0,
    dense_redundancy: float = 2.2,
    launch_overhead_s: float = 0.05,
    saturation_entries: int = 200,
    oom_batch_entries: Optional[int] = None,
    step_scale: float = 1.0,
    label: Optional[str] = None,
) -> RunHistory:
    """Train SGD MF the TensorFlow way: one update per mini-batch.

    Args:
        batch_size: entries per mini-batch (the paper sweeps 806K and 25M).
        dense_redundancy: extra compute from dense ops on sparse data.
        launch_overhead_s: fixed per-batch graph-execution cost; dominates
            when batches are small (paper Fig. 13b: smaller mini-batch,
            *longer* per-iteration time).
        saturation_entries: batch size at which all cores are busy.
        oom_batch_entries: raise like TF's OOM when the batch exceeds this.
        step_scale: multiplier on the app's per-entry step size — batch
            methods tolerate (and need) larger steps than per-entry SGD.
    """
    if oom_batch_entries is not None and batch_size > oom_batch_entries:
        raise ExecutionError(
            f"TensorFlow mini-batch of {batch_size} entries exceeds device "
            f"memory ({oom_batch_entries}); the paper hits the same wall "
            "above 25M entries"
        )
    state = app.init_state(seed)
    entries = list(app.entries())
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(entries))
    shuffled = [entries[int(i)] for i in order]
    batches = [
        shuffled[lo:lo + batch_size] for lo in range(0, len(shuffled), batch_size)
    ]
    entry_cost = cluster.cost.entry_cost_s
    step_size = app.hyper.step_size * step_scale
    history = RunHistory(label=label or f"TensorFlow batch={batch_size}")
    history.meta["initial_loss"] = app.loss(state)

    for _epoch in range(epochs):
        epoch_time = 0.0
        for batch in batches:
            grads, counts = app.batch_gradient(state, batch)
            _apply(state, grads, counts, step_size)
            utilization = min(1.0, len(batch) / saturation_entries)
            compute = len(batch) * entry_cost * dense_redundancy / max(
                utilization, 1e-3
            )
            epoch_time += launch_overhead_s + compute
        history.append(app.loss(state), epoch_time)
    history.meta["state"] = state
    return history


def _apply(
    state: Dict[str, np.ndarray],
    grads: Dict[str, np.ndarray],
    counts: Dict[str, np.ndarray],
    step_size: float,
) -> None:
    """Apply the touch-normalized batch gradient once."""
    for name, grad in grads.items():
        state[name] = state[name] - step_size * grad / counts[name]
