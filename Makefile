PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check compile test trace-smoke fault-smoke bench-smoke clean

## Default verification: imports compile, tier-1 tests pass, the tracing
## pipeline produces a loadable Perfetto trace end to end, and the
## fault-injection/recovery story holds its invariants.
check: compile test trace-smoke fault-smoke

compile:
	$(PYTHON) -m compileall -q src

test:
	$(PYTHON) -m pytest -x -q

## Run the quickstart with tracing enabled and validate the exported
## trace.json against the Chrome trace-event schema.
trace-smoke:
	REPRO_TRACE=trace.json $(PYTHON) examples/quickstart.py > /dev/null
	$(PYTHON) -c "import json; from repro.obs import validate_chrome_trace; \
	trace = json.load(open('trace.json')); problems = validate_chrome_trace(trace); \
	assert not problems, problems; \
	print('trace.json ok:', len(trace['traceEvents']), 'events')"

## Crash/drop/straggler injection end to end: the example asserts the
## faulted run recovers to bit-equal parameters and only costs virtual
## time, and that the no-plan path stays bit-identical.
fault-smoke:
	$(PYTHON) examples/fault_tolerance.py > /dev/null
	@echo "fault-smoke ok"

## Wall-clock kernel-vs-scalar throughput; writes BENCH_wallclock.json.
bench-smoke:
	$(PYTHON) benchmarks/bench_wallclock.py

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache trace.json
