"""One handle on the observability pair: tracer + metrics.

Every instrumented surface in this package used to take two keyword
arguments (``tracer=``, ``metrics=``); :class:`Observability` bundles them
so contexts, loops, baselines and the CLI thread a single object around.
The legacy two-kwarg form keeps working everywhere — explicit ``tracer=``
/ ``metrics=`` arguments override the bundle component-wise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = ["Observability"]


@dataclass
class Observability:
    """A tracer and a metrics registry, threaded together.

    ``Observability.disabled()`` (the default everywhere) shares the
    zero-overhead NULL singletons; ``Observability.enabled()`` makes a
    fresh live pair for one run.
    """

    tracer: Tracer = field(default_factory=lambda: NULL_TRACER)
    metrics: MetricsRegistry = field(default_factory=lambda: NULL_METRICS)

    @classmethod
    def disabled(cls) -> "Observability":
        """The shared no-op pair (zero per-call overhead)."""
        return cls(tracer=NULL_TRACER, metrics=NULL_METRICS)

    @classmethod
    def enabled(cls) -> "Observability":
        """A fresh live tracer + metrics registry."""
        return cls(tracer=Tracer(), metrics=MetricsRegistry())

    @property
    def enabled_any(self) -> bool:
        """Whether either component actually records."""
        return bool(self.tracer.enabled or self.metrics.enabled)

    @classmethod
    def resolve(
        cls,
        obs: Optional["Observability"] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        default: Optional["Observability"] = None,
    ) -> "Observability":
        """Merge the new bundle form with the legacy two-kwarg form.

        Component-wise precedence: an explicit ``tracer=``/``metrics=``
        wins, then the ``obs`` bundle, then ``default`` (e.g. a context's
        observability), then the disabled singletons.
        """
        base = default if default is not None else cls.disabled()
        resolved_tracer = tracer
        if resolved_tracer is None:
            resolved_tracer = obs.tracer if obs is not None else base.tracer
        resolved_metrics = metrics
        if resolved_metrics is None:
            resolved_metrics = obs.metrics if obs is not None else base.metrics
        return cls(tracer=resolved_tracer, metrics=resolved_metrics)
