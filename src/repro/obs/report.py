"""Plain-text straggler / utilization reports from a trace.

Aggregates a :class:`~repro.obs.tracer.Tracer`'s spans into the summary an
operator reads before opening the full trace: per-worker busy/idle time on
the virtual timeline, the critical-path blocks (the longest-running
blocks — the stragglers that stretch the makespan), and the slowest
rotation hops.  When a :class:`~repro.obs.metrics.MetricsRegistry` is
supplied its snapshot is appended.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer

__all__ = ["straggler_report", "utilization_lines"]

#: Traffic categories whose spans count as transfer, not worker busy time.
_TRAFFIC_CATS = ("rotation", "flush", "prefetch", "broadcast", "sync",
                 "restore")

#: Fault-subsystem span categories (on the ``faults`` track).
_FAULT_CATS = ("fault", "recovery", "checkpoint", "straggler")


def _fmt_seconds(value: float) -> str:
    return f"{value * 1e3:10.3f} ms"


def utilization_lines(tracer: Tracer, process: str) -> List[str]:
    """Per-worker busy/idle table rows for one traced process."""
    bounds = tracer.time_bounds(process)
    if bounds is None:
        return ["  (no spans recorded)"]
    horizon = bounds[1] - bounds[0]
    busy = tracer.busy_by_track(cat="block", process=process)
    worker_tracks = [
        track for track in tracer.tracks(process) if track.startswith("worker")
    ]
    lines = [
        f"  {'worker':12s} {'busy':>13s} {'idle':>13s} {'util%':>7s}"
    ]
    for track in worker_tracks:
        b = busy.get(track, 0.0)
        idle = max(horizon - b, 0.0)
        util = 100.0 * b / horizon if horizon > 0 else 0.0
        lines.append(
            f"  {track:12s} {_fmt_seconds(b)} {_fmt_seconds(idle)} "
            f"{util:6.1f}%"
        )
    if not worker_tracks:
        lines.append("  (no worker tracks)")
    return lines


def _top_spans(spans: List[Span], top: int) -> List[Span]:
    return sorted(spans, key=lambda span: span.duration, reverse=True)[:top]


def straggler_report(
    tracer: Tracer,
    metrics: Optional[MetricsRegistry] = None,
    top: int = 5,
    diagnostics: Optional[Sequence[str]] = None,
) -> str:
    """Human-readable utilization + straggler summary of the whole trace.

    One section per traced process (engine): worker busy/idle fractions
    over that process's traced horizon, the ``top`` longest blocks
    (critical-path candidates), and the ``top`` slowest rotation hops.
    ``diagnostics`` (rendered W-code strings, e.g. the kernel-synthesis
    fallbacks W501–W503) are appended as their own section so a run's
    report explains *why* it took the scalar path without a separate
    ``repro lint`` invocation.
    """
    lines: List[str] = []
    processes = tracer.processes()
    if not processes:
        lines.append("(empty trace)")
    for process in processes:
        bounds = tracer.time_bounds(process)
        horizon = (bounds[1] - bounds[0]) if bounds else 0.0
        lines.append(f"== {process}: traced horizon {horizon * 1e3:.3f} ms ==")
        lines.extend(utilization_lines(tracer, process))

        blocks = tracer.filter(cat="block", process=process)
        if blocks:
            lines.append(f"  critical-path blocks (top {min(top, len(blocks))}):")
            for span in _top_spans(blocks, top):
                lines.append(
                    f"    {span.name:20s} {span.track:10s}"
                    f" {_fmt_seconds(span.duration)}"
                    f"  [{span.t_start * 1e3:.3f} .. {span.t_end * 1e3:.3f} ms]"
                )
        rotations = tracer.filter(cat="rotation", process=process)
        if rotations:
            lines.append(
                f"  slowest rotation hops (top {min(top, len(rotations))}):"
            )
            for span in _top_spans(rotations, top):
                hop = ""
                if span.args and "hop" in span.args:
                    hop = f" hop {span.args['hop']}"
                nbytes = ""
                if span.args and "nbytes" in span.args:
                    nbytes = f" {span.args['nbytes'] / 1e3:.1f} KB"
                lines.append(
                    f"    {_fmt_seconds(span.duration)}{hop}{nbytes}"
                    f"  [{span.t_start * 1e3:.3f} .. {span.t_end * 1e3:.3f} ms]"
                )
        traffic_totals = {}
        for cat in _TRAFFIC_CATS:
            total = sum(
                span.args.get("nbytes", 0.0)
                for span in tracer.filter(cat=cat, process=process)
                if span.args
            )
            if total:
                traffic_totals[cat] = total
        if traffic_totals:
            rendered = ", ".join(
                f"{kind}={total / 1e6:.3f} MB"
                for kind, total in sorted(traffic_totals.items())
            )
            lines.append(f"  traffic: {rendered}")
        fault_spans = [
            span
            for cat in _FAULT_CATS
            for span in tracer.filter(cat=cat, process=process)
        ]
        if fault_spans:
            lines.append("  faults/recovery:")
            for span in sorted(fault_spans, key=lambda s: s.t_start):
                lines.append(
                    f"    [{span.cat}] {span.name:32s}"
                    f" {_fmt_seconds(span.duration)}"
                    f"  [{span.t_start * 1e3:.3f} .. "
                    f"{span.t_end * 1e3:.3f} ms]"
                )
        lines.append("")
    if diagnostics:
        lines.append("== kernel-path diagnostics ==")
        for diagnostic in diagnostics:
            for part in str(diagnostic).splitlines():
                lines.append(f"  {part}")
        lines.append("")
    if metrics is not None and metrics.enabled:
        lines.append("== metrics ==")
        snapshot = metrics.snapshot()
        if not snapshot:
            lines.append("  (no metrics recorded)")
        for name, value in snapshot.items():
            if isinstance(value, dict):
                rendered = " ".join(
                    f"{key}={val:.6g}" for key, val in value.items()
                )
                lines.append(f"  {name}: {rendered}")
            else:
                lines.append(f"  {name}: {value:.6g}")
    return "\n".join(lines).rstrip("\n")
