"""The simulated cluster: machines, workers, and their network.

The paper's testbed is a 42-node cluster (16 cores + hyperthreading per
node); its main experiments use 12 machines × 32 workers = 384 workers.
:class:`ClusterSpec` captures that topology plus the network and cost
models every engine charges against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExecutionError
from repro.runtime.network import NetworkModel
from repro.runtime.simtime import CostModel

__all__ = ["ClusterSpec"]


@dataclass
class ClusterSpec:
    """Topology and cost parameters of the simulated cluster.

    Attributes:
        num_machines: machine count (paper default: 12).
        workers_per_machine: workers (virtual cores) per machine (paper: 32).
        network: point-to-point transfer model.
        cost: per-operation compute cost model.
    """

    num_machines: int = 12
    workers_per_machine: int = 32
    network: NetworkModel = field(default_factory=NetworkModel)
    cost: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.num_machines <= 0 or self.workers_per_machine <= 0:
            raise ExecutionError("cluster needs at least one machine and worker")

    @property
    def num_workers(self) -> int:
        """Total worker count across the cluster."""
        return self.num_machines * self.workers_per_machine

    def machine_of(self, worker: int) -> int:
        """Machine hosting ``worker`` (workers are dealt out contiguously)."""
        if not 0 <= worker < self.num_workers:
            raise ExecutionError(f"worker {worker} out of range")
        return worker // self.workers_per_machine

    def same_machine(self, worker_a: int, worker_b: int) -> bool:
        """Whether two workers share a machine (cheap communication)."""
        return self.machine_of(worker_a) == self.machine_of(worker_b)

    @classmethod
    def single_machine(cls, workers: int = 1, **kwargs) -> "ClusterSpec":
        """A one-machine cluster, used for the TensorFlow comparison and
        the serial baseline."""
        return cls(num_machines=1, workers_per_machine=workers, **kwargs)

    @classmethod
    def paper_default(cls, **kwargs) -> "ClusterSpec":
        """The 12-machine × 32-worker setup of the paper's main figures."""
        return cls(num_machines=12, workers_per_machine=32, **kwargs)
