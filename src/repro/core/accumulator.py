"""Accumulators: per-worker reducible driver variables (paper Sec. 3.4).

An accumulator is created on the driver; the runtime keeps one instance per
worker, retained across for-loop executions.  The driver aggregates all
instances with a user-defined commutative, associative operator and may
reset them.  Loop bodies update accumulators explicitly via
:meth:`Accumulator.add` (the Python rendering of the paper's ``err += ...``
on an ``@accumulator`` variable).
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, Optional

from repro.core import access
from repro.errors import AccumulatorError

__all__ = ["Accumulator", "AccumulatorRegistry"]


class Accumulator:
    """A named, per-worker accumulating variable.

    Args:
        name: identifier used by ``get_aggregated_value`` / ``reset``.
        initial: the value each worker instance starts from (and resets to).
        op: commutative + associative combiner, default addition.
    """

    def __init__(
        self,
        name: str,
        initial: Any = 0.0,
        op: Callable[[Any, Any], Any] = operator.add,
    ) -> None:
        self.name = name
        self.initial = initial
        self.op = op
        self._slots: Dict[int, Any] = {}

    def add(self, value: Any) -> None:
        """Fold ``value`` into the current worker's instance."""
        worker = access.current_worker()
        if worker in self._slots:
            self._slots[worker] = self.op(self._slots[worker], value)
        else:
            self._slots[worker] = self.op(self.initial, value)

    def aggregate(self, op: Optional[Callable[[Any, Any], Any]] = None) -> Any:
        """Combine every worker instance (driver included) into one value."""
        combine = op or self.op
        result = self.initial
        for value in self._slots.values():
            result = combine(result, value)
        return result

    def reset(self) -> None:
        """Reset every worker instance back to the initial value."""
        self._slots.clear()

    def worker_value(self, worker: int) -> Any:
        """One worker's current instance value (initial when untouched)."""
        return self._slots.get(worker, self.initial)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Accumulator {self.name} slots={len(self._slots)}>"


class AccumulatorRegistry:
    """Driver-side registry mapping accumulator names to instances."""

    def __init__(self) -> None:
        self._by_name: Dict[str, Accumulator] = {}

    def create(
        self,
        name: str,
        initial: Any = 0.0,
        op: Callable[[Any, Any], Any] = operator.add,
    ) -> Accumulator:
        """Create and register a fresh accumulator under ``name``."""
        if name in self._by_name:
            raise AccumulatorError(f"accumulator {name!r} already exists")
        acc = Accumulator(name, initial, op)
        self._by_name[name] = acc
        return acc

    def get(self, name: str) -> Accumulator:
        """Look up a registered accumulator."""
        try:
            return self._by_name[name]
        except KeyError:
            raise AccumulatorError(f"unknown accumulator {name!r}") from None

    def aggregate(
        self, name: str, op: Optional[Callable[[Any, Any], Any]] = None
    ) -> Any:
        """Aggregate one accumulator's worker instances (paper's
        ``get_aggregated_value``)."""
        return self.get(name).aggregate(op)

    def reset(self, name: str) -> None:
        """Reset one accumulator (paper's ``reset_accumulator``)."""
        self.get(name).reset()
