"""Iteration-space and DistArray partitioning (paper Sec. 4.3/4.4).

The executor partitions the (sparse, usually skewed) iteration space along
the plan's space/time dimensions.  Equal-width partitions of a skewed
dataset are imbalanced, so Orion approximates the data distribution with a
per-dimension histogram and cuts contiguous ranges with near-equal entry
counts.  For unimodular plans, entries are bucketed by their *transformed*
coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.unimodular import Matrix, transform_point
from repro.errors import PartitionError

Entry = Tuple[Tuple[int, ...], Any]

__all__ = [
    "Bounds",
    "axis_slice",
    "equal_bounds",
    "balanced_bounds",
    "bucket_of",
    "IterationPartitions",
    "partition_1d",
    "partition_2d",
    "partition_transformed",
    "retile_time_2d",
    "sort_blocks_by_dim",
]

#: Half-open ``(lo, hi)`` coordinate ranges, one per partition.
Bounds = List[Tuple[int, int]]


def axis_slice(ndim: int, axis: int, lo: int, hi: int) -> Tuple[slice, ...]:
    """A full-array index selecting ``[lo, hi)`` along one axis.

    Used by the multiprocess runtime to address one partition's slice of a
    dense DistArray (e.g. the rotated time-slice owned by a worker)."""
    index: List[slice] = [slice(None)] * ndim
    index[axis] = slice(lo, hi)
    return tuple(index)


def equal_bounds(extent: int, num_parts: int) -> Bounds:
    """Cut ``[0, extent)`` into ``num_parts`` equal-width ranges."""
    if num_parts <= 0:
        raise PartitionError("num_parts must be positive")
    if extent <= 0:
        raise PartitionError("extent must be positive")
    edges = np.linspace(0, extent, num_parts + 1).astype(int)
    return [(int(edges[i]), int(edges[i + 1])) for i in range(num_parts)]


def balanced_bounds(counts: np.ndarray, num_parts: int) -> Bounds:
    """Cut coordinates into contiguous ranges with near-equal entry counts.

    ``counts[c]`` is the number of iteration-space entries with coordinate
    ``c`` along the partitioning dimension (a histogram, paper Sec. 4.3).
    Greedy prefix-sum splitting: each cut is placed where the running count
    first reaches the next multiple of ``total / num_parts``.
    """
    if num_parts <= 0:
        raise PartitionError("num_parts must be positive")
    extent = len(counts)
    if extent == 0:
        raise PartitionError("histogram is empty")
    if extent < num_parts:
        # More partitions than coordinates: one coordinate each, then empty
        # trailing ranges (those workers simply idle).
        singles = [(c, c + 1) for c in range(extent)]
        return singles + [(extent, extent)] * (num_parts - extent)
    total = int(np.sum(counts))
    if total == 0:
        return equal_bounds(extent, num_parts)
    prefix = np.cumsum(counts)
    bounds: Bounds = []
    lo = 0
    for part in range(num_parts):
        if part == num_parts - 1:
            hi = extent
        else:
            target = total * (part + 1) / num_parts
            hi = int(np.searchsorted(prefix, target)) + 1
            hi = max(hi, lo + 1)
            hi = min(hi, extent - (num_parts - part - 1))
        bounds.append((lo, hi))
        lo = hi
    return bounds


def bucket_of(bounds: Bounds, coordinate: int) -> int:
    """Partition index containing ``coordinate`` (linear in partitions,
    which are few)."""
    for position, (lo, hi) in enumerate(bounds):
        if lo <= coordinate < hi:
            return position
    raise PartitionError(f"coordinate {coordinate} outside bounds {bounds}")


@dataclass
class IterationPartitions:
    """Partitioned iteration space handed to the scheduler/executor.

    Blocks are keyed ``(space_idx, time_idx)``; 1D plans use ``time_idx=0``.
    """

    num_space: int
    num_time: int
    blocks: Dict[Tuple[int, int], List[Entry]] = field(default_factory=dict)
    space_bounds: Optional[Bounds] = None
    time_bounds: Optional[Bounds] = None

    def block(self, space_idx: int, time_idx: int) -> List[Entry]:
        """Entries of one block (empty when the block holds no entries)."""
        return self.blocks.get((space_idx, time_idx), [])

    def block_size(self, space_idx: int, time_idx: int) -> int:
        """Entry count of one block."""
        return len(self.blocks.get((space_idx, time_idx), ()))

    def size_matrix(self) -> np.ndarray:
        """(num_space × num_time) entry-count matrix, used by the timing
        model and the load-balance tests."""
        sizes = np.zeros((self.num_space, self.num_time), dtype=np.int64)
        for (space_idx, time_idx), entries in self.blocks.items():
            sizes[space_idx, time_idx] = len(entries)
        return sizes

    @property
    def total_entries(self) -> int:
        """Total entries across every block."""
        return sum(len(entries) for entries in self.blocks.values())


def _histogram(entries: Sequence[Entry], dim: int, extent: int) -> np.ndarray:
    counts = np.zeros(extent, dtype=np.int64)
    for key, _value in entries:
        counts[key[dim]] += 1
    return counts


def partition_1d(
    entries: Sequence[Entry],
    dim: int,
    extent: int,
    num_parts: int,
    balance: bool = True,
) -> IterationPartitions:
    """Partition entries along one iteration-space dimension."""
    if balance:
        bounds = balanced_bounds(_histogram(entries, dim, extent), num_parts)
    else:
        bounds = equal_bounds(extent, num_parts)
    uppers = np.array([hi for _lo, hi in bounds])
    partitions = IterationPartitions(
        num_space=num_parts, num_time=1, space_bounds=bounds
    )
    for key, value in entries:
        space_idx = int(np.searchsorted(uppers, key[dim], side="right"))
        partitions.blocks.setdefault((space_idx, 0), []).append((key, value))
    return partitions


def partition_2d(
    entries: Sequence[Entry],
    space_dim: int,
    time_dim: int,
    space_extent: int,
    time_extent: int,
    num_space: int,
    num_time: int,
    balance: bool = True,
) -> IterationPartitions:
    """Partition entries into a (space × time) grid of blocks."""
    if balance:
        space_bounds = balanced_bounds(
            _histogram(entries, space_dim, space_extent), num_space
        )
        time_bounds = balanced_bounds(
            _histogram(entries, time_dim, time_extent), num_time
        )
    else:
        space_bounds = equal_bounds(space_extent, num_space)
        time_bounds = equal_bounds(time_extent, num_time)
    space_uppers = np.array([hi for _lo, hi in space_bounds])
    time_uppers = np.array([hi for _lo, hi in time_bounds])
    partitions = IterationPartitions(
        num_space=num_space,
        num_time=num_time,
        space_bounds=space_bounds,
        time_bounds=time_bounds,
    )
    for key, value in entries:
        space_idx = int(np.searchsorted(space_uppers, key[space_dim], side="right"))
        time_idx = int(np.searchsorted(time_uppers, key[time_dim], side="right"))
        partitions.blocks.setdefault((space_idx, time_idx), []).append((key, value))
    return partitions


def sort_blocks_by_dim(partitions: IterationPartitions, dim: int) -> None:
    """Stably sort every block's entries by one iteration-space dimension.

    The unordered-2D canonical order: with each block's entries sorted by
    the *time* coordinate (stable, so same-coordinate entries keep their
    dataset order), a worker's rotation over any time tiling concatenates
    to the same per-worker entry sequence — coarse bins traversed whole
    equal their fine sub-bins traversed in rotation order.  That is the
    invariant that makes a mid-run pipeline-depth change bit-identical
    (see :func:`retile_time_2d`); it must therefore hold from the *first*
    epoch, not just after a re-tile.
    """
    for entries in partitions.blocks.values():
        entries.sort(key=lambda entry: entry[0][dim])


def retile_time_2d(
    entries: Sequence[Entry],
    space_dim: int,
    time_dim: int,
    time_extent: int,
    space_bounds: Optional[Bounds],
    num_time: int,
    balance: bool = True,
) -> IterationPartitions:
    """Re-cut only the *time* dimension of an existing 2D partitioning.

    The adaptive tuner's legal re-tiling primitive (``docs/tuning.md``):
    the given ``space_bounds`` are reused verbatim — never recomputed —
    so every entry provably stays on the worker that owned it before, and
    blocks hold the canonical time-sorted entry order
    (:func:`sort_blocks_by_dim`), so each worker's rotation concatenates
    to the same per-worker entry sequence at every depth.  Changing
    ``num_time`` therefore changes scheduling granularity without
    changing the execution linearization, which is what keeps results
    bit-identical across pipeline depths (the executor additionally
    verifies that the worker-start time cuts nest before committing a
    re-tile).
    """
    if space_bounds is None:
        raise PartitionError(
            "retile_time_2d needs the existing space bounds "
            "(equal/balanced cuts from the original partitioning)"
        )
    if balance:
        time_bounds = balanced_bounds(
            _histogram(entries, time_dim, time_extent), num_time
        )
    else:
        time_bounds = equal_bounds(time_extent, num_time)
    space_uppers = np.array([hi for _lo, hi in space_bounds])
    time_uppers = np.array([hi for _lo, hi in time_bounds])
    partitions = IterationPartitions(
        num_space=len(space_bounds),
        num_time=num_time,
        space_bounds=list(space_bounds),
        time_bounds=time_bounds,
    )
    for key, value in entries:
        space_idx = int(np.searchsorted(space_uppers, key[space_dim], side="right"))
        time_idx = int(np.searchsorted(time_uppers, key[time_dim], side="right"))
        partitions.blocks.setdefault((space_idx, time_idx), []).append((key, value))
    sort_blocks_by_dim(partitions, time_dim)
    return partitions


def partition_transformed(
    entries: Sequence[Entry],
    matrix: Matrix,
    num_space: int,
    num_time: int,
) -> IterationPartitions:
    """Partition entries by their unimodular-transformed coordinates.

    The transformed level 0 becomes the time dimension (it carries every
    dependence, so its blocks run sequentially) and level 1 the space
    dimension.  Block boundaries are balanced on the transformed
    coordinates' empirical distribution.
    """
    if not entries:
        raise PartitionError("cannot partition an empty iteration space")
    transformed = [
        (transform_point(matrix, key), key, value) for key, value in entries
    ]
    time_coords = np.array([q[0] for q, _k, _v in transformed])
    space_coords = np.array([q[1] for q, _k, _v in transformed])

    def _bounds_from(coords: np.ndarray, parts: int) -> Bounds:
        lo, hi = int(coords.min()), int(coords.max()) + 1
        shifted = np.bincount(coords - lo, minlength=hi - lo)
        ranges = balanced_bounds(shifted, parts)
        return [(rlo + lo, rhi + lo) for rlo, rhi in ranges]

    time_bounds = _bounds_from(time_coords, num_time)
    space_bounds = _bounds_from(space_coords, num_space)
    time_uppers = np.array([hi for _lo, hi in time_bounds])
    space_uppers = np.array([hi for _lo, hi in space_bounds])
    partitions = IterationPartitions(
        num_space=num_space,
        num_time=num_time,
        space_bounds=space_bounds,
        time_bounds=time_bounds,
    )
    for q, key, value in transformed:
        time_idx = int(np.searchsorted(time_uppers, q[0], side="right"))
        space_idx = int(np.searchsorted(space_uppers, q[1], side="right"))
        partitions.blocks.setdefault((space_idx, time_idx), []).append((key, value))
    return partitions
