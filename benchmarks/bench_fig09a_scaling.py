"""Fig. 9a — time per iteration vs. number of workers (SGD MF and LDA).

Paper result: Orion-parallelized programs beat the serial Julia program
from 2 workers on (despite abstraction overhead) and keep speeding up
consistently to 384 workers.  This benchmark sweeps worker counts on the
simulated cluster and prints time/iteration (averaged over iterations 2+,
as the paper averages iterations 2-8) plus the speedup over serial.
"""

import pytest

import _workloads as wl
from repro.apps import LDAApp, SGDMFApp, build_lda, build_sgd_mf
from repro.baselines import run_serial
from repro.runtime.cluster import ClusterSpec

WORKER_SWEEP = [1, 2, 4, 8, 12, 24, 48]
EPOCHS = 3


def _sweep_mf():
    dataset = wl.netflix_bench()
    base = wl.mf_cluster()
    serial = run_serial(
        SGDMFApp(dataset, wl.MF_HYPER), EPOCHS, cost=base.cost.with_overhead(1.0)
    )
    rows = [("serial", f"{serial.time_per_iteration():.4f}", "1.00x")]
    for workers in WORKER_SWEEP:
        cluster = ClusterSpec(
            num_machines=max(1, workers // wl.BENCH_WORKERS_PER_MACHINE),
            workers_per_machine=min(workers, wl.BENCH_WORKERS_PER_MACHINE),
            network=wl.BENCH_NETWORK,
            cost=base.cost,
        )
        program = build_sgd_mf(dataset, cluster=cluster, hyper=wl.MF_HYPER)
        history = program.run(EPOCHS)
        t = history.time_per_iteration()
        rows.append(
            (workers, f"{t:.4f}", f"{serial.time_per_iteration() / t:.2f}x")
        )
    return serial, rows


def _sweep_lda():
    dataset = wl.nytimes_bench()
    base = wl.lda_cluster()
    serial = run_serial(
        LDAApp(dataset, wl.LDA_HYPER), EPOCHS, cost=base.cost.with_overhead(1.0)
    )
    rows = [("serial", f"{serial.time_per_iteration():.4f}", "1.00x")]
    for workers in WORKER_SWEEP:
        cluster = ClusterSpec(
            num_machines=max(1, workers // wl.BENCH_WORKERS_PER_MACHINE),
            workers_per_machine=min(workers, wl.BENCH_WORKERS_PER_MACHINE),
            network=wl.BENCH_NETWORK,
            cost=base.cost,
        )
        program = build_lda(
            dataset,
            cluster=cluster,
            hyper=wl.LDA_HYPER,
            pipeline_depth=wl.BENCH_PIPELINE_DEPTH,
        )
        history = program.run(EPOCHS)
        t = history.time_per_iteration()
        rows.append(
            (workers, f"{t:.4f}", f"{serial.time_per_iteration() / t:.2f}x")
        )
    return serial, rows


@pytest.mark.benchmark(group="fig09a")
def test_fig09a_mf_scaling(benchmark, report):
    serial, rows = benchmark.pedantic(_sweep_mf, rounds=1, iterations=1)
    table = wl.fmt_table(["workers", "s/iter", "speedup vs serial"], rows)
    report(
        "Fig 9a (SGD MF): time per iteration vs workers",
        table
        + "\npaper shape: beats serial from 2 workers; consistent speedup "
        "to 384 workers",
    )
    # Shape assertions: serial beaten by 2 workers, monotone-ish scaling.
    speedups = [float(r[2][:-1]) for r in rows[1:]]
    assert speedups[1] > 1.0, "2 workers must beat serial"
    assert speedups[-1] > speedups[1], "speedup keeps growing"
    assert speedups[-1] > 4.0


@pytest.mark.benchmark(group="fig09a")
def test_fig09a_lda_scaling(benchmark, report):
    serial, rows = benchmark.pedantic(_sweep_lda, rounds=1, iterations=1)
    table = wl.fmt_table(["workers", "s/iter", "speedup vs serial"], rows)
    report(
        "Fig 9a (LDA): time per iteration vs workers",
        table
        + "\npaper shape: beats serial from 2 workers; consistent speedup."
        "\n(The scaled-down corpus strong-scales to ~a dozen workers; the"
        "\npaper's 300K-document NYTimes keeps scaling to 384.)",
    )
    speedups = [float(r[2][:-1]) for r in rows[1:]]
    assert speedups[1] > 1.0  # beats serial at 2 workers
    # Keeps speeding up well past 2 workers.  (LDA's ceiling at this scale
    # is per-worker marshalling of the rotated count data — each worker
    # serializes the full rotated array once per pass regardless of the
    # worker count; the paper's far larger corpora stay compute-bound.)
    assert max(speedups) > 2 * speedups[1]
