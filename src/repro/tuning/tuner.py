"""The adaptive tuner: observe -> decide -> act, between epochs.

:class:`AdaptiveTuner` closes the loop the insight layer opened.  After
each traced epoch it consumes the exact time attribution
(:func:`repro.obs.insight.attribute_epochs`) plus the what-if estimates,
re-predicts the epoch makespan at every legal pipeline depth through the
very timing model the simulator charges
(:func:`repro.runtime.schedule.scan_unordered_depths`), and applies the
winning knobs to the *next* epoch via the executor's legality-checked
:meth:`~repro.runtime.executor.OrionExecutor.retune`.  Every change it
makes is one the plan proves result-preserving — the dependence-driven
strategy, partition dimensions and balancing are never touched — so a
tuned run's numerics are bit-identical to the untuned run; only the
clock moves.

Decision procedure on the virtual clock (deterministic — same traces,
same decisions):

1. **Epoch 1** runs at the starting depth ``d0`` (cache-seeded when a
   prior run learned this loop).  Its attribution is split into
   *tileable* seconds (compute/prefetch/flush/marshalling, which shrink
   per block as blocks get finer) and *per-block* seconds
   (message-setup CPU, charged once per block regardless of size); the
   model scan re-tiles those across candidate depths and jumps straight
   to the predicted argmin ``d*`` when it beats ``d0`` by at least
   :data:`MIN_PREDICTED_GAIN`.  Free knobs are fixed in the same pass:
   index caching always on, bulk prefetch on when the what-if shows the
   round trips cost more than :data:`MIN_PREFETCH_GAIN`.
2. **Epoch 2** measures ``d*``.  Better than the measured baseline:
   lock it in.  Worse (the model was wrong): revert to ``d0`` and lock.

Either way the configuration is final by epoch 3 — the tuner performs at
most two depth changes, each charged to the virtual clock as one re-bin
pass plus one rotated-array reshuffle.

On the real clock (multiprocess backend) there is no trustworthy
per-phase attribution to feed the model, so the tuner falls back to a
single hill-climb step: try the heuristic depth once, keep whichever
measured faster.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.runtime import schedule as sched
from repro.runtime.executor import AUTO_PIPELINE_DEPTH
from repro.tuning.cache import TuningCache, tuning_signature

__all__ = [
    "MIN_PREDICTED_GAIN",
    "MIN_PREFETCH_GAIN",
    "TuningDecision",
    "AdaptiveTuner",
]

#: Fractional predicted improvement required before the tuner moves the
#: pipeline depth — below this the reshuffle cost isn't worth the churn.
MIN_PREDICTED_GAIN = 0.02

#: Fractional what-if gain required before bulk prefetch is switched on.
MIN_PREFETCH_GAIN = 0.05

#: Candidate depths beyond this are thinned to powers of two (the scan
#: re-times every candidate; very deep pipelines only ever lose to
#: per-block overhead, so dense scanning out there buys nothing).
_DENSE_SCAN_LIMIT = 16

#: How many predicted-better depths to attempt re-tiling before giving
#: up (each refused attempt cost one discarded re-bin).
_MAX_RETILE_ATTEMPTS = 4


@dataclass
class TuningDecision:
    """One observe->decide->act step, applied or declined."""

    epoch: int
    knob: str
    old: Any
    new: Any
    reason: str
    #: Virtual seconds the change cost (re-bin + reshuffle; 0 for free
    #: knobs and declined decisions).
    cost_s: float = 0.0
    #: The model's predicted epoch seconds at the new value, when a scan
    #: drove the decision.
    predicted_s: Optional[float] = None
    applied: bool = True

    def to_json(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "knob": self.knob,
            "old": self.old,
            "new": self.new,
            "reason": self.reason,
            "cost_s": self.cost_s,
            "predicted_s": self.predicted_s,
            "applied": self.applied,
        }


def _scan_depths(max_depth: int) -> List[int]:
    """Candidate depths: dense up to :data:`_DENSE_SCAN_LIMIT`, then
    powers of two, always including the maximum."""
    depths = set(range(1, min(max_depth, _DENSE_SCAN_LIMIT) + 1))
    power = 2
    while power <= max_depth:
        depths.add(power)
        power *= 2
    depths.add(max_depth)
    return sorted(depths)


class AdaptiveTuner:
    """Per-loop adaptive tuner (``LoopOptions.tune="auto"|"cached"``).

    Owned by :class:`~repro.api.ParallelLoop`; never constructed when
    ``tune="off"`` (that path does not even import this package).
    """

    def __init__(self, loop: Any) -> None:
        self.loop = loop
        self.mode: str = loop.options.tune
        self.cache = TuningCache.resolve(loop.options.run_store)
        self.signature = tuning_signature(loop)
        self.decisions: List[TuningDecision] = []
        #: The cache entry's config applied at construction (None on a
        #: cold start or when clamping rejected every cached knob).
        self.seeded: Optional[Dict[str, Any]] = None
        #: ``measure`` -> ``verify`` -> ``locked``.
        self._state = "measure" if self.mode == "auto" else "locked"
        self._baseline_depth: Optional[int] = None
        self._baseline_time: Optional[float] = None
        self._predictions: Dict[int, float] = {}
        #: Best measured (epoch seconds, config) — what ``finish`` caches.
        self._best: Optional[Tuple[float, Dict[str, Any]]] = None

    # ---------------- observe helpers ---------------------------------- #

    def current_config(self) -> Dict[str, Any]:
        """The executor's live values of the tuned knobs."""
        executor = self.loop.executor
        return {
            "pipeline_depth": int(executor.pipeline_depth),
            "prefetch": executor.prefetch_mode,
            "cache_prefetch": bool(executor.cache_prefetch),
        }

    def _last_attribution(self):
        """Exact attribution of the newest traced epoch, or ``None``."""
        from repro.obs.insight import attribute_epochs

        executor = self.loop.executor
        if not executor.tracer.enabled:
            return None
        attributions = attribute_epochs(
            executor.tracer, executor.trace_process
        )
        return attributions[-1] if attributions else None

    def _scan_signals(
        self, attribution: Any
    ) -> Tuple[List[float], List[float]]:
        """Split each worker's measured busy time into the scan's two
        inputs: seconds that re-tile with the blocks and seconds charged
        per block.

        Marshalling is the subtlety: the executor charges it inside the
        ``overhead`` phase, but it is proportional to the block's bytes —
        per worker it totals ``marshalling_s_per_byte * rotated_bytes``
        at *every* depth — so it belongs with the tileable work, not the
        per-block setup cost.
        """
        executor = self.loop.executor
        marshalling_total = (
            executor.cluster.cost.marshalling_s_per_byte
            * executor.rotated_bytes_total
        )
        num_time = max(1, executor.num_time)
        tileable: List[float] = []
        per_block: List[float] = []
        for track in sorted(attribution.workers):
            worker = attribution.workers[track]
            overhead = worker.seconds_by_category().get("overhead", 0.0)
            busy = worker.busy_seconds()
            per_block.append(
                max(0.0, overhead - marshalling_total) / num_time
            )
            tileable.append(busy - overhead + marshalling_total)
        return tileable, per_block

    # ---------------- act ---------------------------------------------- #

    def _apply(self, epoch: int, changes: Dict[str, TuningDecision]) -> float:
        """Apply a batch of knob changes through the loop (one retune,
        one backend invalidation) and record the decisions."""
        from repro.errors import ExecutionError, PartitionError

        knobs = {
            knob: decision.new for knob, decision in changes.items()
        }
        try:
            cost = self.loop._apply_retune(**knobs)
        except (ExecutionError, PartitionError) as error:
            # A refused retune (e.g. degenerate skew breaks cut nesting)
            # is a decision outcome, not a crash: record it and let the
            # caller fall back (to the next candidate, or to staying put).
            for decision in changes.values():
                decision.applied = False
                decision.reason += f"; refused: {error}"
                self.decisions.append(decision)
            return 0.0
        charged = False
        for knob, decision in changes.items():
            if knob == "pipeline_depth" and not charged:
                decision.cost_s = cost
                charged = True
            self.decisions.append(decision)
        if cost > 0.0 or changes:
            executor = self.loop.executor
            now = self.loop.ctx.now
            executor.tracer.add_span(
                "retune",
                "tuning",
                now,
                now + cost,
                track="tuning",
                process=executor.trace_process,
                args={
                    "epoch": epoch,
                    "knobs": {k: d.new for k, d in changes.items()},
                },
            )
            metrics = executor.metrics
            metrics.counter("tuning_decisions_total").inc(len(changes))
            metrics.counter("tuning_retune_seconds_total").inc(cost)
        return cost

    # ---------------- lifecycle ---------------------------------------- #

    def seed(self) -> None:
        """Apply a cached winning configuration before the first epoch.

        Runs at loop construction, before any partition has been used, so
        nothing is charged to the clock.  Cached knobs that this plan
        refuses (the cache key ignores tunable knobs, but legality is
        per-plan) are clamped away rather than erroring — a stale cache
        must never fail a run.
        """
        entry = self.cache.get(self.signature)
        if not entry:
            return
        config = entry.get("config") or {}
        allowed = self.loop.executor.retunable()["knobs"]
        legal: Dict[str, Any] = {}
        if "pipeline_depth" in config and "pipeline_depth" in allowed:
            low, high = allowed["pipeline_depth"]
            legal["pipeline_depth"] = max(
                low, min(int(config["pipeline_depth"]), high)
            )
        if "prefetch" in config and config.get("prefetch") in allowed.get(
            "prefetch", ()
        ):
            legal["prefetch"] = config["prefetch"]
        if "cache_prefetch" in config:
            legal["cache_prefetch"] = bool(config["cache_prefetch"])
        if not legal:
            return
        from repro.errors import ExecutionError, PartitionError

        before = self.current_config()
        try:
            self.loop.executor.retune(**legal)
        except (ExecutionError, PartitionError):
            return
        self.seeded = dict(legal)
        for knob, value in sorted(legal.items()):
            if before.get(knob) == value:
                continue
            self.decisions.append(
                TuningDecision(
                    epoch=0,
                    knob=knob,
                    old=before.get(knob),
                    new=value,
                    reason=(
                        "seeded from the tuning cache "
                        f"({entry.get('epoch_time_s', 0.0):.6f} s/epoch "
                        "measured previously)"
                    ),
                )
            )

    def after_epoch(self, epoch: int, result: Any) -> float:
        """Consume one finished epoch; returns virtual seconds to charge.

        The returned cost is the re-partitioning work of any applied
        depth change (0 when nothing changed); the caller advances the
        virtual clock by it so tuned makespans stay honest.
        """
        measured = float(result.epoch_time_s)
        config = self.current_config()
        if self._best is None or measured < self._best[0]:
            self._best = (measured, config)
        if self.mode != "auto" or self._state == "locked":
            return 0.0
        if getattr(result, "fault", None) is not None:
            # An aborted pass measures the fault, not the configuration.
            return 0.0
        if result.clock == "real":
            return self._after_epoch_real(epoch, measured, config)
        return self._after_epoch_virtual(epoch, measured, config)

    def _after_epoch_virtual(
        self, epoch: int, measured: float, config: Dict[str, Any]
    ) -> float:
        executor = self.loop.executor
        changes: Dict[str, TuningDecision] = {}
        if self._state == "verify":
            assert self._baseline_time is not None
            if measured > self._baseline_time:
                changes["pipeline_depth"] = TuningDecision(
                    epoch=epoch,
                    knob="pipeline_depth",
                    old=config["pipeline_depth"],
                    new=self._baseline_depth,
                    reason=(
                        f"revert: measured {measured:.6f} s is slower "
                        f"than the baseline {self._baseline_time:.6f} s"
                    ),
                )
            self._state = "locked"
            return self._apply(epoch, changes) if changes else 0.0

        # ---- state == "measure": the first clean epoch at d0 ---------- #
        self._baseline_depth = config["pipeline_depth"]
        self._baseline_time = measured
        allowed = executor.retunable()["knobs"]
        attribution = self._last_attribution()

        # Free knobs first: they never cost clock time and the depth
        # scan's measured signals already include their current policy.
        if (
            "prefetch" in allowed
            and config["prefetch"] == "none"
            and attribution is not None
        ):
            what_if = attribution.what_if()
            actual = what_if.get("actual", 0.0)
            overlap = what_if.get("perfect_prefetch", actual)
            if actual > 0 and (actual - overlap) / actual > MIN_PREFETCH_GAIN:
                changes["prefetch"] = TuningDecision(
                    epoch=epoch,
                    knob="prefetch",
                    old="none",
                    new="auto",
                    reason=(
                        "what-if: perfect prefetch overlap saves "
                        f"{100.0 * (actual - overlap) / actual:.1f}% "
                        "of the epoch"
                    ),
                )
        prefetch_mode = (
            changes["prefetch"].new if "prefetch" in changes
            else config["prefetch"]
        )
        if not config["cache_prefetch"] and prefetch_mode == "auto":
            changes["cache_prefetch"] = TuningDecision(
                epoch=epoch,
                knob="cache_prefetch",
                old=False,
                new=True,
                reason=(
                    "index caching strictly dominates re-deriving the "
                    "prefetch set every epoch (the paper's 9.2s->6.3s "
                    "step)"
                ),
            )

        # Depth: re-predict every legal depth through the schedule model.
        depth_bounds = allowed.get("pipeline_depth")
        if depth_bounds is None or attribution is None:
            self._state = "locked"
            if depth_bounds is None:
                self.decisions.append(
                    TuningDecision(
                        epoch=epoch,
                        knob="pipeline_depth",
                        old=config["pipeline_depth"],
                        new=config["pipeline_depth"],
                        reason=executor.retunable()["refused"].get(
                            "pipeline_depth", "not retunable for this plan"
                        ),
                        applied=False,
                    )
                )
            return self._apply(epoch, changes) if changes else 0.0

        cost = self._apply(epoch, changes) if changes else 0.0

        tileable, per_block = self._scan_signals(attribution)
        self._predictions = sched.scan_unordered_depths(
            tileable,
            per_block,
            executor.cluster,
            executor.rotated_bytes_total,
            _scan_depths(depth_bounds[1]),
        )
        d0 = config["pipeline_depth"]
        base_prediction = self._predictions.get(d0, measured)
        candidates = sorted(
            (
                depth for depth, seconds in self._predictions.items()
                if depth != d0
                and base_prediction > 0
                and (base_prediction - seconds) / base_prediction
                >= MIN_PREDICTED_GAIN
            ),
            key=lambda depth: (self._predictions[depth], depth),
        )
        # Best predicted first; a refused re-tile (degenerate cuts at
        # that granularity) falls through to the next-best candidate.
        for depth in candidates[:_MAX_RETILE_ATTEMPTS]:
            predicted = self._predictions[depth]
            gain = (base_prediction - predicted) / base_prediction
            decision = TuningDecision(
                epoch=epoch,
                knob="pipeline_depth",
                old=d0,
                new=depth,
                reason=(
                    f"model scan: depth {depth} predicts "
                    f"{predicted:.6f} s/epoch vs {base_prediction:.6f} s "
                    f"at depth {d0} ({100.0 * gain:.1f}% better)"
                ),
                predicted_s=predicted,
            )
            cost += self._apply(epoch, {"pipeline_depth": decision})
            if decision.applied:
                self._state = "verify"
                return cost
        self.decisions.append(
            TuningDecision(
                epoch=epoch,
                knob="pipeline_depth",
                old=d0,
                new=d0,
                reason=(
                    f"model scan keeps depth {d0}: no retileable "
                    f"candidate beats it by "
                    f"{100.0 * MIN_PREDICTED_GAIN:.0f}%"
                ),
                predicted_s=base_prediction,
                applied=False,
            )
        )
        self._state = "locked"
        return cost

    def _after_epoch_real(
        self, epoch: int, measured: float, config: Dict[str, Any]
    ) -> float:
        """One hill-climb step on measured wall seconds (no phase
        attribution to feed the model on the real clock)."""
        executor = self.loop.executor
        allowed = executor.retunable()["knobs"]
        depth_bounds = allowed.get("pipeline_depth")
        if self._state == "verify":
            assert self._baseline_time is not None
            changes: Dict[str, TuningDecision] = {}
            if measured > self._baseline_time:
                changes["pipeline_depth"] = TuningDecision(
                    epoch=epoch,
                    knob="pipeline_depth",
                    old=config["pipeline_depth"],
                    new=self._baseline_depth,
                    reason=(
                        f"revert: {measured:.4f} s measured vs "
                        f"{self._baseline_time:.4f} s baseline"
                    ),
                )
            self._state = "locked"
            return self._apply(epoch, changes) if changes else 0.0
        self._baseline_depth = config["pipeline_depth"]
        self._baseline_time = measured
        if depth_bounds is None:
            self._state = "locked"
            return 0.0
        candidate = max(
            depth_bounds[0],
            min(
                AUTO_PIPELINE_DEPTH
                if config["pipeline_depth"] == 1
                else config["pipeline_depth"] - 1,
                depth_bounds[1],
            ),
        )
        if candidate == config["pipeline_depth"]:
            self._state = "locked"
            return 0.0
        decision = TuningDecision(
            epoch=epoch,
            knob="pipeline_depth",
            old=config["pipeline_depth"],
            new=candidate,
            reason=(
                f"hill-climb: try depth {candidate} for one measured "
                "epoch (real clock, no model attribution)"
            ),
        )
        self._state = "verify"
        return self._apply(epoch, {"pipeline_depth": decision})

    def finish(self) -> None:
        """Persist the best *measured* configuration (``"auto"`` only)."""
        if self.mode != "auto" or self._best is None:
            return
        best_time, best_config = self._best
        previous = self.cache.get(self.signature)
        if previous and previous.get("config") == best_config and not (
            best_time < float(previous.get("epoch_time_s", math.inf))
        ):
            return
        self.cache.put(
            self.signature,
            best_config,
            best_time,
            clock=self.loop.executor.options.backend == "multiprocess"
            and "real" or "virtual",
            label=self.loop.options.run_label or "",
        )

    # ---------------- reporting ---------------------------------------- #

    def summary(self) -> Dict[str, Any]:
        """JSON-safe record for the run store's ``tuning`` field."""
        return {
            "mode": self.mode,
            "signature": self.signature,
            "seeded": self.seeded,
            "final": self.current_config(),
            "decisions": [d.to_json() for d in self.decisions],
            "predictions": {
                str(depth): seconds
                for depth, seconds in sorted(self._predictions.items())
            },
        }

    def describe(self) -> List[str]:
        """Human lines for ``ParallelLoop.explain()``'s Tuning section."""
        lines = [f"mode: {self.mode}  (cache: {self.cache.path})"]
        if self.seeded is not None:
            lines.append(f"seeded from cache: {self.seeded}")
        elif self.mode in ("auto", "cached"):
            lines.append("cache: miss (cold start)")
        final = self.current_config()
        lines.append(
            "configuration: depth={pipeline_depth} prefetch={prefetch} "
            "cache_prefetch={cache_prefetch}".format(**final)
        )
        for decision in self.decisions:
            verb = "applied" if decision.applied else "declined"
            lines.append(
                f"epoch {decision.epoch}: {verb} {decision.knob} "
                f"{decision.old} -> {decision.new}  ({decision.reason})"
            )
        if not self.decisions:
            lines.append("no decisions yet (runs adapt between epochs)")
        return lines
