"""Fig. 9c — LDA per-iteration convergence by parallelization scheme.

Paper result (NYTimes, 384 workers): serial and dependence-aware
parallelization (ordered or unordered) converge together; data parallelism
lags.  The loss here is negative per-token predictive log likelihood
(lower is better), mirroring the paper's log-likelihood axis flipped.
"""

import pytest

import _workloads as wl
from repro.apps import LDAApp, build_lda
from repro.baselines import run_bosen, run_serial

EPOCHS = 6


def _run_all():
    dataset = wl.nytimes_bench()
    cluster = wl.lda_cluster()
    app = LDAApp(dataset, wl.LDA_HYPER, seed=0)
    runs = {}
    runs["serial"] = run_serial(app, EPOCHS, cost=cluster.cost)
    app_dp = LDAApp(dataset, wl.LDA_HYPER, seed=0)
    runs["data parallel (Bosen)"] = run_bosen(app_dp, cluster, EPOCHS)
    runs["dep-aware (unordered)"] = build_lda(
        dataset,
        cluster=cluster,
        hyper=wl.LDA_HYPER,
        ordered=False,
        pipeline_depth=wl.BENCH_PIPELINE_DEPTH,
    ).run(EPOCHS)
    runs["dep-aware (ordered)"] = build_lda(
        dataset, cluster=cluster, hyper=wl.LDA_HYPER, ordered=True
    ).run(EPOCHS)
    return runs


@pytest.mark.benchmark(group="fig09c")
def test_fig09c_lda_convergence(benchmark, report):
    runs = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    checkpoints = [1, 2, 3, 4, 5, 6]
    rows = []
    for label, history in runs.items():
        rows.append(
            [label]
            + [f"{history.losses[epoch - 1]:.4f}" for epoch in checkpoints]
        )
    table = wl.fmt_table(["scheme"] + [f"iter {e}" for e in checkpoints], rows)
    report(
        "Fig 9c: LDA convergence per iteration (NYTimes-like)",
        table
        + "\npaper shape: serial ~= dep-aware (ordered ~= unordered); "
        "data parallelism converges slower",
    )

    serial = runs["serial"].final_loss
    unordered = runs["dep-aware (unordered)"].final_loss
    ordered = runs["dep-aware (ordered)"].final_loss
    bosen = runs["data parallel (Bosen)"].final_loss
    initial = runs["serial"].meta["initial_loss"]
    progress = initial - serial
    assert abs(unordered - serial) < 0.3 * progress
    assert abs(ordered - serial) < 0.3 * progress
    # Data parallelism makes less per-iteration progress.
    assert (initial - bosen) < (initial - unordered)
