"""Bösen managed communication (paper Sec. 6.4; ref. [45]).

Given a per-machine bandwidth budget, Bösen's CM mechanism proactively
communicates parameter updates *before* the synchronization barrier when
spare bandwidth is available, prioritizing the largest-magnitude updates.
Early communication shrinks the staleness window (convergence approaches
dependence-aware parallelization) at the price of sustained network usage
and CPU marshalling overhead — the trade-off Figs. 10 and 12 show.

The engine divides each data pass into communication slots.  After each
slot every worker sends its largest pending deltas within the slot's byte
budget; the master applies them and refreshed values propagate to all
replicas.  A full barrier sync ends the pass.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.apps.base import SerialApp
from repro.baselines.bosen import shard_entries
from repro.runtime.cluster import ClusterSpec
from repro.runtime.history import RunHistory

__all__ = ["run_managed_comm"]

#: Bytes per communicated coordinate: 8B index + 8B value.
_COORD_BYTES = 16.0


def _top_k_delta(
    delta: Dict[str, np.ndarray], max_coords: int
) -> Dict[str, np.ndarray]:
    """Mask keeping only the largest-|value| coordinates within budget.

    The budget is divided across state arrays proportionally to their size
    and the top coordinates are picked *per array*: magnitudes are not
    comparable across arrays (optimizer accumulators grow monotonically and
    would otherwise starve the actual model parameters of bandwidth).
    """
    total_size = sum(array.size for array in delta.values())
    if total_size == 0:
        return {name: array.copy() for name, array in delta.items()}
    out = {}
    for name, array in delta.items():
        quota = int(max_coords * array.size / total_size)
        if quota >= array.size:
            out[name] = array.copy()
            continue
        if quota <= 0:
            out[name] = np.zeros_like(array)
            continue
        magnitudes = np.abs(array).ravel()
        threshold = np.partition(magnitudes, -quota)[-quota]
        mask = np.abs(array) >= threshold
        out[name] = np.where(mask, array, 0.0)
    return out


def run_managed_comm(
    app: SerialApp,
    cluster: ClusterSpec,
    epochs: int,
    bandwidth_budget_mbps: float,
    seed: int = 0,
    slots_per_epoch: int = 10,
    cpu_overhead_s_per_mb: float = 2e-3,
    label: Optional[str] = None,
) -> RunHistory:
    """Train ``app`` with Bösen + managed communication.

    Args:
        bandwidth_budget_mbps: per-machine budget (paper: 1600 for SGD MF,
            2560 for LDA).
        slots_per_epoch: early-communication opportunities per data pass.
        cpu_overhead_s_per_mb: marshalling/lock-contention CPU charge per
            megabyte communicated (reduces computation throughput, the
            paper's ClueWeb LDA effect).
    """
    workers = cluster.num_workers
    master = app.init_state(seed)
    shards = shard_entries(list(app.entries()), workers, seed)
    entry_cost = cluster.cost.entry_cost_s * cluster.cost.overhead_factor
    budget_bytes_per_s = bandwidth_budget_mbps * 1e6 / 8.0
    history = RunHistory(label=label or f"Bosen CM {app.name}")
    history.meta["initial_loss"] = app.loss(master)
    clock = 0.0

    replicas = [app.clone_state(master) for _ in range(workers)]
    bases = [app.clone_state(master) for _ in range(workers)]

    for _epoch in range(epochs):
        epoch_bytes = 0.0
        epoch_start = clock
        for slot in range(slots_per_epoch):
            slowest = 0.0
            for worker in range(workers):
                shard = shards[worker]
                lo = len(shard) * slot // slots_per_epoch
                hi = len(shard) * (slot + 1) // slots_per_epoch
                replica = replicas[worker]
                for key, value in shard[lo:hi]:
                    app.apply_entry(replica, key, value)
                slowest = max(slowest, (hi - lo) * entry_cost)
            # Early communication: per-worker top-|delta| within budget.
            slot_budget_bytes = budget_bytes_per_s * max(slowest, 1e-9) \
                * cluster.num_machines
            per_worker_coords = int(
                slot_budget_bytes / _COORD_BYTES / max(workers, 1)
            )
            sent_deltas = []
            slot_bytes = 0.0
            for worker in range(workers):
                delta = {
                    name: replicas[worker][name] - bases[worker][name]
                    for name in master
                }
                sent = _top_k_delta(delta, per_worker_coords)
                sent_deltas.append(sent)
                slot_bytes += sum(
                    float(np.count_nonzero(array)) for array in sent.values()
                ) * _COORD_BYTES
            for name in master:
                for sent in sent_deltas:
                    master[name] = master[name] + sent[name]
            for worker in range(workers):
                for name in master:
                    retained = (
                        replicas[worker][name]
                        - bases[worker][name]
                        - sent_deltas[worker][name]
                    )
                    replicas[worker][name] = master[name] + retained
                    bases[worker][name] = master[name].copy()
            cpu_overhead = cpu_overhead_s_per_mb * slot_bytes / 1e6
            history.traffic.record(
                clock, clock + max(slowest, 1e-9), slot_bytes, "managed_comm"
            )
            clock += slowest + cpu_overhead
            epoch_bytes += slot_bytes
        # Full barrier sync: commit every retained delta.
        for name in master:
            for worker in range(workers):
                master[name] = master[name] + (
                    replicas[worker][name] - bases[worker][name]
                )
        for worker in range(workers):
            replicas[worker] = app.clone_state(master)
            bases[worker] = app.clone_state(master)
        model_nbytes = app.model_nbytes(master)
        barrier_bytes = 2.0 * model_nbytes * cluster.num_machines
        transfer = cluster.network.transfer_time(2.0 * model_nbytes)
        history.traffic.record(clock, clock + transfer, barrier_bytes, "sync")
        clock += transfer + cluster.cost.sync_overhead_s
        epoch_bytes += barrier_bytes
        history.append(app.loss(master), clock - epoch_start, epoch_bytes)
    history.meta["state"] = master
    return history
