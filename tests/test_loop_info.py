"""Unit tests for loop-body static analysis (repro.analysis.loop_info)."""

import numpy as np
import pytest

from repro.analysis.loop_info import analyze_loop_body
from repro.analysis.subscript import SubscriptKind
from repro.core.accumulator import Accumulator
from repro.core.buffers import DistArrayBuffer
from repro.core.distarray import DistArray
from repro.errors import AnalysisError


def _iter_space_2d(shape=(6, 5)):
    entries = [((i, j), 1.0) for i in range(shape[0]) for j in range(shape[1])]
    return DistArray.from_entries(entries, name="space", shape=shape).materialize()


def _iter_space_1d(extent=8):
    entries = [((i,), float(i)) for i in range(extent)]
    return DistArray.from_entries(entries, name="space1", shape=(extent,)).materialize()


W = DistArray.randn(3, 6, name="Wg", seed=0).materialize()
H = DistArray.randn(3, 5, name="Hg", seed=1).materialize()


class TestReferenceExtraction:
    def test_mf_reads_and_writes(self):
        space = _iter_space_2d()
        step = 0.1

        def body(key, value):
            w = W[:, key[0]]
            h = H[:, key[1]]
            W[:, key[0]] = w - step * h
            H[:, key[1]] = h - step * w

        info = analyze_loop_body(body, space)
        assert set(info.refs) == {"W", "H"}
        w_refs = info.refs["W"]
        assert sum(r.is_write for r in w_refs) == 1
        assert sum(r.is_read for r in w_refs) == 1
        read = next(r for r in w_refs if r.is_read)
        assert read.axes[0].kind is SubscriptKind.SLICE_ALL
        assert read.axes[1].kind is SubscriptKind.INDEX
        assert read.axes[1].dim_idx == 0

    def test_tuple_unpacking_alias(self):
        space = _iter_space_2d()

        def body(key, value):
            i, j = key
            W[:, i] = W[:, i] * 0.5
            H[:, j] = H[:, j] * 0.5

        info = analyze_loop_body(body, space)
        w_write = next(r for r in info.refs["W"] if r.is_write)
        assert w_write.axes[1].dim_idx == 0
        h_write = next(r for r in info.refs["H"] if r.is_write)
        assert h_write.axes[1].dim_idx == 1

    def test_derived_alias_with_offset(self):
        space = _iter_space_2d()

        def body(key, value):
            shifted = key[0] + 1
            W[:, shifted] = W[:, shifted] * 0.9

        info = analyze_loop_body(body, space)
        write = next(r for r in info.refs["W"] if r.is_write)
        assert (write.axes[1].dim_idx, write.axes[1].const) == (0, 1)

    def test_reassigned_alias_conservative(self):
        space = _iter_space_2d()

        def body(key, value):
            i = key[0]
            i = i * 2  # no longer a plain loop-index alias
            W[:, i] = W[:, i] + 1.0

        info = analyze_loop_body(body, space)
        write = next(r for r in info.refs["W"] if r.is_write)
        assert write.axes[1].kind is SubscriptKind.UNKNOWN

    def test_augassign_counts_as_read_and_write(self):
        space = _iter_space_1d(6)
        vec = DistArray.zeros(6, name="vec").materialize()

        def body(key, value):
            vec[key[0]] += value

        info = analyze_loop_body(body, space)
        refs = info.refs["vec"]
        assert sum(r.is_write for r in refs) == 1
        assert sum(r.is_read for r in refs) == 1

    def test_whole_key_subscript(self):
        space = _iter_space_2d((4, 4))
        zs = DistArray.from_entries(
            [((i, j), 0.0) for i in range(4) for j in range(4)],
            name="zs", shape=(4, 4),
        ).materialize()

        def body(key, value):
            zs[key] = zs[key] + 1.0

        info = analyze_loop_body(body, space)
        write = next(r for r in info.refs["zs"] if r.is_write)
        assert all(a.kind is SubscriptKind.INDEX for a in write.axes)
        assert [a.dim_idx for a in write.axes] == [0, 1]

    def test_whole_key_dim_mismatch_raises(self):
        space = _iter_space_1d(4)
        grid = DistArray.zeros(4, 4, name="grid").materialize()

        def body(key, value):
            grid[key] = 0.0

        with pytest.raises(AnalysisError):
            analyze_loop_body(body, space)

    def test_value_derived_subscript_unknown(self):
        space = _iter_space_1d(6)
        weights = DistArray.zeros(20, name="weights").materialize()

        def body(key, value):
            weights[int(value)] = 1.0

        info = analyze_loop_body(body, space)
        write = next(r for r in info.refs["weights"] if r.is_write)
        assert write.axes[0].kind is SubscriptKind.UNKNOWN


class TestBuffersAccumulatorsInherited:
    def test_buffer_writes_separated(self):
        space = _iter_space_1d(6)
        weights = DistArray.zeros(20, name="weights").materialize()
        buf = DistArrayBuffer(weights, name="buf")

        def body(key, value):
            buf[key[0]] = value

        info = analyze_loop_body(body, space)
        assert "buf" in info.buffers
        assert "buf" in info.buffer_refs
        assert info.buffer_refs["buf"][0].buffered
        assert "weights" not in info.refs  # only touched via the buffer

    def test_buffer_arity_mismatch_raises(self):
        space = _iter_space_1d(6)
        grid = DistArray.zeros(4, 4, name="grid").materialize()
        buf = DistArrayBuffer(grid, name="gridbuf")

        def body(key, value):
            buf[key[0]] = value  # target is 2-D

        with pytest.raises(AnalysisError):
            analyze_loop_body(body, space)

    def test_accumulator_detection(self):
        space = _iter_space_1d(6)
        err = Accumulator("err", 0.0)

        def body(key, value):
            err.add(value * value)

        info = analyze_loop_body(body, space)
        assert info.accumulators == {"err"}

    def test_inherited_variables(self):
        space = _iter_space_1d(6)
        vec = DistArray.zeros(6, name="vec").materialize()
        step = 0.25
        offset = 1.0

        def body(key, value):
            vec[key[0]] = step * value + offset

        info = analyze_loop_body(body, space)
        assert info.inherited == {"step": 0.25, "offset": 1.0}

    def test_numpy_module_not_inherited(self):
        space = _iter_space_1d(6)
        vec = DistArray.zeros(6, name="vec").materialize()

        def body(key, value):
            vec[key[0]] = np.exp(value)

        info = analyze_loop_body(body, space)
        assert "np" not in info.inherited

    def test_locals_not_inherited(self):
        space = _iter_space_1d(6)
        vec = DistArray.zeros(6, name="vec").materialize()

        def body(key, value):
            local = value * 2
            vec[key[0]] = local

        info = analyze_loop_body(body, space)
        assert "local" not in info.inherited


class TestPlacementHelpers:
    def test_pinned_array_dim(self):
        space = _iter_space_2d()

        def body(key, value):
            W[:, key[0]] = W[:, key[0]] * 0.5

        info = analyze_loop_body(body, space)
        assert info.pinned_array_dim("W", 0) == 1
        assert info.pinned_array_dim("W", 1) is None

    def test_pinned_requires_every_ref(self):
        space = _iter_space_2d()

        def body(key, value):
            a = W[:, key[0]]
            b = W[0, 2]  # a second ref that is not pinned by key[0]
            W[:, key[0]] = a + b

        info = analyze_loop_body(body, space)
        assert info.pinned_array_dim("W", 0) is None

    def test_written_arrays(self):
        space = _iter_space_2d()

        def body(key, value):
            H[:, key[1]] = W[:, key[0]]

        info = analyze_loop_body(body, space)
        assert info.written_arrays() == {"H"}

    def test_arrays_with_unknown_subscripts(self):
        space = _iter_space_1d(6)
        weights = DistArray.zeros(20, name="weights").materialize()

        def body(key, value):
            weights[int(value)] = weights[int(value)] + 1.0

        info = analyze_loop_body(body, space)
        assert info.arrays_with_unknown_subscripts() == {"weights"}


class TestErrors:
    def test_unmaterialized_iteration_space_raises(self):
        space = DistArray.from_entries([((0,), 1.0)], name="lazy", shape=(1,))

        def body(key, value):
            return value

        with pytest.raises(AnalysisError):
            analyze_loop_body(body, space)

    def test_zero_parameter_body_raises(self):
        space = _iter_space_1d(3)

        def body():
            return None

        with pytest.raises(AnalysisError):
            analyze_loop_body(body, space)

    def test_subscript_arity_mismatch_raises(self):
        space = _iter_space_1d(3)

        def body(key, value):
            return W[key[0]]  # W is 2-D

        with pytest.raises(AnalysisError):
            analyze_loop_body(body, space)
