"""Tests for the threaded execution backend (executor concurrency modes).

A dependence-preserving schedule's same-step blocks touch disjoint
elements, so running them on a thread pool must produce *bitwise identical*
results to the serial linearization — the strongest possible witness that
the claimed concurrency is real.
"""

import numpy as np
import pytest

from repro.apps import MFHyper, build_sgd_mf, build_slr
from repro.apps.slr import SLRHyper
from repro.data import netflix_like, sparse_classification
from repro.errors import ExecutionError
from repro.runtime.cluster import ClusterSpec


@pytest.fixture(scope="module")
def mf_data():
    return netflix_like(num_rows=48, num_cols=40, num_ratings=1200, seed=41)


@pytest.fixture
def cluster():
    return ClusterSpec(num_machines=2, workers_per_machine=2)


class TestThreadedMF:
    def test_bitwise_identical_to_serial(self, mf_data, cluster):
        hyper = MFHyper(rank=4, step_size=0.05)
        serial = build_sgd_mf(
            mf_data, cluster=cluster, hyper=hyper, seed=3, concurrency="serial"
        )
        threaded = build_sgd_mf(
            mf_data, cluster=cluster, hyper=hyper, seed=3, concurrency="threads"
        )
        serial.run(3)
        threaded.run(3)
        assert np.array_equal(
            serial.arrays["W"].values, threaded.arrays["W"].values
        )
        assert np.array_equal(
            serial.arrays["H"].values, threaded.arrays["H"].values
        )

    def test_threaded_passes_validation(self, mf_data, cluster):
        program = build_sgd_mf(
            mf_data,
            cluster=cluster,
            hyper=MFHyper(rank=4),
            concurrency="threads",
            validate=True,
        )
        program.run(2)  # raises on any serializability violation

    def test_threaded_ordered_schedule(self, mf_data, cluster):
        program = build_sgd_mf(
            mf_data,
            cluster=cluster,
            hyper=MFHyper(rank=4),
            ordered=True,
            concurrency="threads",
            validate=True,
        )
        history = program.run(2)
        assert len(history.records) == 2

    def test_virtual_time_unaffected_by_backend(self, mf_data, cluster):
        hyper = MFHyper(rank=4)
        t_serial = build_sgd_mf(
            mf_data, cluster=cluster, hyper=hyper, concurrency="serial"
        ).run(2).total_time_s
        t_threads = build_sgd_mf(
            mf_data, cluster=cluster, hyper=hyper, concurrency="threads"
        ).run(2).total_time_s
        assert t_serial == pytest.approx(t_threads)


class TestThreadedBuffered:
    def test_slr_buffered_writes_threaded(self, cluster):
        dataset = sparse_classification(
            num_samples=120, num_features=60, nnz_per_sample=5, seed=43
        )
        program = build_slr(
            dataset,
            cluster=cluster,
            hyper=SLRHyper(step_size=0.2),
            concurrency="threads",
        )
        history = program.run(3)
        assert history.final_loss < history.meta["initial_loss"]


class TestBadMode:
    def test_unknown_concurrency_rejected(self, mf_data, cluster):
        with pytest.raises(ExecutionError, match="concurrency"):
            build_sgd_mf(
                mf_data,
                cluster=cluster,
                hyper=MFHyper(rank=4),
                concurrency="gpus",
            )
