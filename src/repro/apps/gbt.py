"""Gradient boosted regression trees (paper Table 2 row 6, 1D parallel).

Histogram-based GBT in the Orion programming model.  Each boosting round
grows one depth-limited regression tree:

1. **Histogram loops** (one per tree level): every sample adds its residual
   gradient into per-(leaf, feature, bin) histograms.  The histogram
   subscripts are data dependent, so those writes go through DistArray
   Buffers; the per-sample state (``preds``, ``node_assign``) is subscripted
   ``[key[0]]`` and pins the loop to *1D* parallelization over samples.
2. **Driver split selection**: reads the flushed histograms, picks the
   variance-reducing split per leaf.
3. **Grow loop**: routes each sample to its child node.
4. **Apply loop**: adds the finished tree's leaf values into predictions.

Feature values are pre-quantized into ``num_bins`` buckets, as in
production GBT systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.api import OrionContext
from repro.apps.base import (
    OrionProgram,
    resolve_kernel_option,
    resolve_loop_options,
)
from repro.data.synthetic import TableDataset
from repro.runtime.cluster import ClusterSpec
from repro.runtime.simtime import CostModel

__all__ = ["GBTHyper", "build_orion_program", "gbt_cost_model", "quantize_features"]


@dataclass(frozen=True)
class GBTHyper:
    """Boosting hyperparameters."""

    num_rounds: int = 10
    max_depth: int = 3
    learning_rate: float = 0.3
    num_bins: int = 16
    min_samples_split: int = 8


def gbt_cost_model(
    hyper: GBTHyper, num_features: int, base_entry_cost: float = 1e-6
) -> CostModel:
    """Per-sample cost: one histogram contribution per feature per level."""
    factor = num_features * hyper.max_depth / 8.0
    return CostModel(entry_cost_s=base_entry_cost * factor)


def quantize_features(features: np.ndarray, num_bins: int) -> np.ndarray:
    """Per-column quantile binning of a dense feature matrix."""
    binned = np.zeros_like(features, dtype=np.int64)
    for column in range(features.shape[1]):
        edges = np.quantile(
            features[:, column], np.linspace(0, 1, num_bins + 1)[1:-1]
        )
        binned[:, column] = np.searchsorted(edges, features[:, column])
    return np.minimum(binned, num_bins - 1)


def _best_splits(
    hist_sum: np.ndarray,
    hist_cnt: np.ndarray,
    active_leaves: List[int],
    min_samples: int,
) -> Dict[int, tuple]:
    """Variance-reduction split per active leaf from its histograms.

    Returns leaf -> (feature, bin_threshold) for leaves worth splitting.
    """
    splits: Dict[int, tuple] = {}
    num_features, num_bins = hist_sum.shape[1], hist_sum.shape[2]
    for leaf in active_leaves:
        total_sum = float(hist_sum[leaf, 0].sum())
        total_cnt = float(hist_cnt[leaf, 0].sum())
        if total_cnt < min_samples:
            continue
        base_score = total_sum * total_sum / max(total_cnt, 1e-12)
        best = None
        for feature in range(num_features):
            left_sum = 0.0
            left_cnt = 0.0
            for threshold in range(num_bins - 1):
                left_sum += float(hist_sum[leaf, feature, threshold])
                left_cnt += float(hist_cnt[leaf, feature, threshold])
                right_sum = total_sum - left_sum
                right_cnt = total_cnt - left_cnt
                if left_cnt < 1 or right_cnt < 1:
                    continue
                score = (
                    left_sum * left_sum / left_cnt
                    + right_sum * right_sum / right_cnt
                    - base_score
                )
                if best is None or score > best[0]:
                    best = (score, feature, threshold)
        if best is not None and best[0] > 1e-12:
            splits[leaf] = (best[1], best[2])
    return splits


def build_orion_program(
    dataset: TableDataset,
    cluster: Optional[ClusterSpec] = None,
    hyper: GBTHyper = GBTHyper(),
    seed: int = 0,
    label: Optional[str] = None,
    use_kernel: Any = True,
    **loop_opts,
) -> OrionProgram:
    """Build the GBT Orion program (one epoch = one boosting round).

    GBT has no hand kernel; ``use_kernel=True`` attempts synthesis
    (``kernel="auto"``) for each of the round's three loops.  The
    histogram loop batches (its shared writes are buffered); the grow and
    apply loops fall back to the scalar interpreter with W50x diagnostics
    (state-dependent branching / unbuffered shared writes).
    """
    cluster = cluster or ClusterSpec(num_machines=1, workers_per_machine=4)
    ctx = OrionContext(cluster=cluster, seed=seed)
    binned = quantize_features(dataset.features, hyper.num_bins)
    targets = dataset.targets
    entries = [
        ((i,), (binned[i], float(targets[i]))) for i in range(dataset.num_samples)
    ]
    samples = ctx.from_entries(entries, name="samples", shape=dataset.shape)
    ctx.materialize(samples)
    preds = ctx.zeros(dataset.num_samples, name="preds")
    node_assign = ctx.zeros(dataset.num_samples, name="node_assign")
    ctx.materialize(preds, node_assign)

    max_leaves = 2 ** hyper.max_depth
    num_features = dataset.num_features
    hist_sum = ctx.zeros(max_leaves, num_features, hyper.num_bins, name="hist_sum")
    hist_cnt = ctx.zeros(max_leaves, num_features, hyper.num_bins, name="hist_cnt")
    ctx.materialize(hist_sum, hist_cnt)
    sum_buf = ctx.dist_array_buffer(hist_sum, name="sum_buf")
    cnt_buf = ctx.dist_array_buffer(hist_cnt, name="cnt_buf")

    # Mutable driver state the loop bodies read through their closures
    # ("inherited variables may change between loop executions", Sec. 3.2).
    splits_by_leaf: Dict[int, tuple] = {}
    leaf_values = np.zeros(max_leaves)
    learning_rate = hyper.learning_rate

    def hist_body(key, sample):
        bins, target = sample
        leaf = int(node_assign[key[0]])
        residual = target - preds[key[0]]
        for feature in range(num_features):
            sum_buf[leaf, feature, bins[feature]] = residual
            cnt_buf[leaf, feature, bins[feature]] = 1.0

    def grow_body(key, sample):
        bins, target = sample
        leaf = int(node_assign[key[0]])
        split = splits_by_leaf.get(leaf)
        if split is None:
            node_assign[key[0]] = leaf * 2
        else:
            feature, threshold = split
            node_assign[key[0]] = leaf * 2 + (1 if bins[feature] > threshold else 0)

    def apply_body(key, sample):
        leaf = int(node_assign[key[0]])
        preds[key[0]] = preds[key[0]] + leaf_values[leaf]
        node_assign[key[0]] = 0.0

    kernel_opt = loop_opts.pop("kernel", resolve_kernel_option(use_kernel))
    opts = resolve_loop_options(loop_opts).merged_with(kernel=kernel_opt)
    hist_loop = ctx.parallel_for(samples, options=opts)(hist_body)
    grow_loop = ctx.parallel_for(samples, options=opts)(grow_body)
    apply_loop = ctx.parallel_for(samples, options=opts)(apply_body)

    def run_round():
        results = []
        for _level in range(hyper.max_depth):
            hist_sum.values[:] = 0.0
            hist_cnt.values[:] = 0.0
            results.extend(hist_loop.run())
            active = sorted(
                {
                    leaf
                    for leaf in range(max_leaves)
                    if hist_cnt.values[leaf].sum() > 0
                }
            )
            splits_by_leaf.clear()
            splits_by_leaf.update(
                _best_splits(
                    hist_sum.values,
                    hist_cnt.values,
                    active,
                    hyper.min_samples_split,
                )
            )
            results.extend(grow_loop.run())
        # Leaf values: mean residual per final leaf, from one last histogram.
        hist_sum.values[:] = 0.0
        hist_cnt.values[:] = 0.0
        results.extend(hist_loop.run())
        leaf_values[:] = 0.0
        for leaf in range(max_leaves):
            count = hist_cnt.values[leaf, 0].sum()
            if count > 0:
                leaf_values[leaf] = (
                    learning_rate * hist_sum.values[leaf, 0].sum() / count
                )
        results.extend(apply_loop.run())
        return results

    def loss_fn() -> float:
        residual = targets - preds.values
        return float(residual @ residual / len(targets))

    return OrionProgram(
        label=label or "Orion GBT",
        ctx=ctx,
        epoch_fn=run_round,
        loss_fn=loss_fn,
        train_loop=hist_loop,
        arrays={
            "samples": samples,
            "preds": preds,
            "node_assign": node_assign,
            "hist_sum": hist_sum,
            "hist_cnt": hist_cnt,
        },
        meta={"hyper": hyper},
    )
